//! The simulated communication world: rank threads, mailboxes, collectives.

// detlint: allow(D001) pending is a lookup-only match table (exact-key remove/insert), never iterated or drained
use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use exflow_topology::collective_cost::BytesByClass;
use exflow_topology::{ClusterSpec, CostModel, Rank};

use crate::clock::VirtualClock;
use crate::record::{CommRecord, CommStats, OpKind};

/// A message between rank threads. Payloads are real buffers; `arrival` is
/// the virtual time at which the bytes are fully delivered.
#[derive(Debug)]
struct Msg {
    src: usize,
    seq: u64,
    step: u32,
    arrival: f64,
    payload: Vec<u8>,
}

/// Shared state backing [`RankComm::barrier`]: a three-phase max-reduction
/// of the ranks' virtual clocks.
struct BarrierState {
    gate: std::sync::Barrier,
    max_clock: Mutex<f64>,
}

/// A simulated cluster communicator. Owns the cluster shape, the cost model
/// and the shared [`CommStats`]; [`CommWorld::run`] spawns one thread per
/// rank and hands each a [`RankComm`].
pub struct CommWorld {
    cluster: ClusterSpec,
    cost: CostModel,
    stats: Arc<CommStats>,
}

impl CommWorld {
    /// Create a world over `cluster` with per-link costs from `cost`.
    pub fn new(cluster: ClusterSpec, cost: CostModel) -> Self {
        CommWorld {
            cluster,
            cost,
            stats: Arc::new(CommStats::new()),
        }
    }

    /// The cluster shape.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Shared communication statistics, accumulated across all runs until
    /// [`CommStats::reset`].
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Spawn one thread per rank, run `f` on each with its [`RankComm`],
    /// and return the per-rank results ordered by rank.
    ///
    /// Panics in any rank propagate (the run is aborted and the panic
    /// re-raised), so test failures inside rank closures surface normally.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&mut RankComm) -> R + Sync,
        R: Send,
    {
        let w = self.cluster.world_size();
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(w);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(w);
        for _ in 0..w {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let barrier = Arc::new(BarrierState {
            gate: std::sync::Barrier::new(w),
            max_clock: Mutex::new(0.0),
        });

        let mut results: Vec<Option<R>> = (0..w).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(w);
            for (rank, (slot, rx)) in results.iter_mut().zip(receivers.iter_mut()).enumerate() {
                let senders = senders.clone();
                let rx = rx.take().expect("receiver taken once");
                let barrier = Arc::clone(&barrier);
                let stats = Arc::clone(&self.stats);
                let cluster = self.cluster;
                let cost = self.cost;
                let f = &f;
                handles.push(scope.spawn(move |_| {
                    let mut comm = RankComm {
                        rank: Rank(rank),
                        cluster,
                        cost,
                        senders,
                        rx,
                        // detlint: allow(D001) lookup-only match table, never iterated
                        pending: HashMap::new(),
                        clock: VirtualClock::new(),
                        seq: 0,
                        barrier,
                        stats,
                    };
                    *slot = Some(f(&mut comm));
                }));
            }
            let mut first_panic = None;
            for h in handles {
                if let Err(payload) = h.join() {
                    first_panic.get_or_insert(payload);
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        })
        .expect("comm scope failed");

        results
            .into_iter()
            .map(|r| r.expect("every rank produces a result"))
            .collect()
    }
}

/// One rank's endpoint inside a [`CommWorld::run`] closure.
///
/// All methods are *collective*: every rank in the world must call them in
/// the same order (the usual SPMD contract). Sequence numbers are checked in
/// debug builds via message tags — a mismatched schedule deadlocks rather
/// than silently mismatching payloads.
pub struct RankComm {
    rank: Rank,
    cluster: ClusterSpec,
    cost: CostModel,
    senders: Vec<Sender<Msg>>,
    rx: Receiver<Msg>,
    /// Out-of-order message stash, keyed by (src, seq, step). Every
    /// access is an exact-key `remove`/`insert` — the map is never
    /// iterated, so hash order cannot leak into any result.
    // detlint: allow(D001) lookup-only match table, never iterated or drained
    pending: HashMap<(usize, u64, u32), Msg>,
    clock: VirtualClock,
    seq: u64,
    barrier: Arc<BarrierState>,
    stats: Arc<CommStats>,
}

impl RankComm {
    /// This rank's id.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.cluster.world_size()
    }

    /// The cluster shape.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Current virtual time at this rank.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Advance this rank's clock by a compute duration (seconds).
    pub fn advance(&mut self, dt: f64) {
        self.clock.advance(dt);
    }

    fn send(&mut self, dst: usize, seq: u64, step: u32, payload: Vec<u8>) {
        let msg = Msg {
            src: self.rank.0,
            seq,
            step,
            arrival: self.clock.now(),
            payload,
        };
        self.senders[dst].send(msg).expect("receiver alive");
    }

    fn recv(&mut self, src: usize, seq: u64, step: u32) -> Msg {
        let key = (src, seq, step);
        if let Some(m) = self.pending.remove(&key) {
            return m;
        }
        loop {
            let m = self.rx.recv().expect("peer disconnected mid-collective");
            let mkey = (m.src, m.seq, m.step);
            if mkey == key {
                return m;
            }
            self.pending.insert(mkey, m);
        }
    }

    /// AlltoallV: `bufs[j]` is sent to rank `j`; returns one buffer per
    /// source rank (index `i` holds what rank `i` sent here).
    ///
    /// Virtual-time model: sends serialize on the sender's copy/NIC engine
    /// (ring order starting at `rank+1` so concurrent senders spread across
    /// destinations); each receive waits until the message's arrival stamp.
    pub fn all_to_all_v(&mut self, mut bufs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let w = self.world_size();
        assert_eq!(
            bufs.len(),
            w,
            "all_to_all_v needs exactly one buffer per rank"
        );
        let seq = self.seq;
        self.seq += 1;
        let start = self.clock.now();
        let mut sent = BytesByClass::default();
        let me = self.rank.0;

        let mut own: Option<Vec<u8>> = None;
        for off in 0..w {
            let dst = (me + off) % w;
            let payload = std::mem::take(&mut bufs[dst]);
            // Zero-count lanes are skipped by AlltoallV implementations
            // (no message, no startup latency) — only charge real traffic.
            if !payload.is_empty() {
                let class = self.cluster.link_class(self.rank, Rank(dst));
                let t = self
                    .cost
                    .alltoall_transfer_time(class, payload.len() as u64);
                self.clock.advance(t);
                sent.add(class, payload.len() as u64);
            }
            if dst == me {
                own = Some(payload);
            } else {
                self.send(dst, seq, 0, payload);
            }
        }

        let mut out: Vec<Vec<u8>> = (0..w).map(|_| Vec::new()).collect();
        out[me] = own.unwrap_or_default();
        for off in 1..w {
            let src = (me + w - off) % w;
            let msg = self.recv(src, seq, 0);
            self.clock.wait_until(msg.arrival);
            out[src] = msg.payload;
        }

        self.stats.record(CommRecord {
            op: OpKind::Alltoall,
            rank: me,
            start,
            end: self.clock.now(),
            sent,
        });
        out
    }

    /// AllGatherV over a ring: every rank contributes `buf`; returns all
    /// contributions ordered by rank.
    ///
    /// Uses the standard `W-1`-step ring schedule, so on hierarchical
    /// clusters only the two ring edges that straddle node boundaries pay
    /// inter-node cost — matching how NCCL rings behave on the paper's
    /// testbed.
    pub fn all_gather_v(&mut self, buf: Vec<u8>) -> Vec<Vec<u8>> {
        let w = self.world_size();
        let seq = self.seq;
        self.seq += 1;
        let start = self.clock.now();
        let me = self.rank.0;
        let mut sent = BytesByClass::default();

        let mut blocks: Vec<Option<Vec<u8>>> = (0..w).map(|_| None).collect();
        blocks[me] = Some(buf);

        if w > 1 {
            let right = (me + 1) % w;
            let left = (me + w - 1) % w;
            let right_class = self.cluster.link_class(self.rank, Rank(right));
            for step in 0..(w - 1) as u32 {
                let send_idx = (me + w - step as usize % w) % w;
                let payload = blocks[send_idx]
                    .as_ref()
                    .expect("ring invariant: block present before forwarding")
                    .clone();
                let t = self.cost.transfer_time(right_class, payload.len() as u64);
                self.clock.advance(t);
                sent.add(right_class, payload.len() as u64);
                self.send(right, seq, step, payload);

                let msg = self.recv(left, seq, step);
                self.clock.wait_until(msg.arrival);
                let recv_idx = (me + w - 1 - step as usize % w) % w;
                blocks[recv_idx] = Some(msg.payload);
            }
        }

        self.stats.record(CommRecord {
            op: OpKind::AllGather,
            rank: me,
            start,
            end: self.clock.now(),
            sent,
        });
        blocks
            .into_iter()
            .map(|b| b.expect("ring completes all blocks"))
            .collect()
    }

    /// Fold an externally orchestrated operation into the world's shared
    /// [`CommStats`] — used by the engine for traffic it prices
    /// analytically on this rank's clock (e.g. expert-weight migrations,
    /// `OpKind::Migration`) so byte accounting stays complete without
    /// moving payloads the simulation never inspects.
    pub fn record(&self, rec: CommRecord) {
        self.stats.record(rec);
    }

    /// Barrier: synchronizes all ranks' virtual clocks to the global max.
    ///
    /// Used between generation iterations, where the paper's engine
    /// implicitly synchronizes through the AllGather anyway; modeled as
    /// cost-free because its latency is dwarfed by data-bearing collectives.
    pub fn barrier(&mut self) {
        let start = self.clock.now();
        {
            let mut m = self.barrier.max_clock.lock();
            if self.clock.now() > *m {
                *m = self.clock.now();
            }
        }
        self.barrier.gate.wait();
        let target = *self.barrier.max_clock.lock();
        self.clock.wait_until(target);
        self.barrier.gate.wait();
        // Third phase: one rank resets the slot for the next barrier, then
        // everyone re-synchronizes so no writer can race the reset.
        if self.barrier.gate.wait().is_leader() {
            *self.barrier.max_clock.lock() = 0.0;
        }
        self.barrier.gate.wait();

        self.stats.record(CommRecord {
            op: OpKind::Barrier,
            rank: self.rank.0,
            start,
            end: self.clock.now(),
            sent: BytesByClass::default(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(nodes: usize, gpn: usize) -> CommWorld {
        CommWorld::new(ClusterSpec::new(nodes, gpn).unwrap(), CostModel::wilkes3())
    }

    #[test]
    fn alltoall_routes_payloads_correctly() {
        let w = world(2, 2);
        let results = w.run(|comm| {
            let me = comm.rank().0 as u8;
            // Send [me, dst] to each dst.
            let bufs: Vec<Vec<u8>> = (0..comm.world_size())
                .map(|dst| vec![me, dst as u8])
                .collect();
            comm.all_to_all_v(bufs)
        });
        for (me, received) in results.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &vec![src as u8, me as u8]);
            }
        }
    }

    #[test]
    fn alltoall_single_rank_self_delivery() {
        let w = world(1, 1);
        let results = w.run(|comm| comm.all_to_all_v(vec![vec![7, 7]]));
        assert_eq!(results[0][0], vec![7, 7]);
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let w = world(2, 4);
        let results = w.run(|comm| {
            let me = comm.rank().0 as u8;
            comm.all_gather_v(vec![me; (me as usize) + 1])
        });
        for received in results {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf.len(), src + 1);
                assert!(buf.iter().all(|&b| b == src as u8));
            }
        }
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs() {
        let run_once = || {
            let w = world(2, 2);
            w.run(|comm| {
                comm.advance(1e-3 * (comm.rank().0 + 1) as f64);
                let bufs = vec![vec![0u8; 4096]; comm.world_size()];
                comm.all_to_all_v(bufs);
                let _ = comm.all_gather_v(vec![0u8; 1024]);
                comm.now()
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "virtual clocks must not depend on scheduling");
    }

    #[test]
    fn barrier_synchronizes_clocks_to_max() {
        let w = world(1, 4);
        let results = w.run(|comm| {
            comm.advance(comm.rank().0 as f64);
            comm.barrier();
            comm.now()
        });
        for t in &results {
            assert_eq!(*t, 3.0);
        }
    }

    #[test]
    fn repeated_barriers_reset_correctly() {
        let w = world(1, 3);
        let results = w.run(|comm| {
            comm.advance(comm.rank().0 as f64); // clocks 0,1,2
            comm.barrier(); // all at 2
            comm.advance(0.5); // all at 2.5
            comm.barrier(); // still 2.5 (max unchanged)
            comm.now()
        });
        for t in &results {
            assert!((*t - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn internode_alltoall_slower_than_intranode() {
        // Two clusters, same world size: 1x4 vs 4x1.
        let run = |nodes, gpn| {
            let w = world(nodes, gpn);
            let times = w.run(|comm| {
                let bufs = vec![vec![0u8; 1 << 16]; comm.world_size()];
                comm.all_to_all_v(bufs);
                comm.now()
            });
            times.into_iter().fold(0.0f64, f64::max)
        };
        assert!(run(4, 1) > run(1, 4));
    }

    #[test]
    fn stats_capture_bytes_by_class() {
        let w = world(2, 2);
        w.run(|comm| {
            let bufs = vec![vec![0u8; 100]; comm.world_size()];
            comm.all_to_all_v(bufs);
        });
        let totals = w.stats().totals(OpKind::Alltoall);
        assert_eq!(totals.records, 4);
        // Each rank: 100B self (local), 100B intra, 2x100B inter.
        assert_eq!(totals.sent.local, 400);
        assert_eq!(totals.sent.intra_node, 400);
        assert_eq!(totals.sent.inter_node, 800);
    }

    #[test]
    fn run_returns_results_in_rank_order() {
        let w = world(1, 8);
        let results = w.run(|comm| comm.rank().0 * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn empty_buffers_are_legal() {
        let w = world(1, 4);
        let results = w.run(|comm| {
            let bufs = vec![Vec::new(); comm.world_size()];
            let out = comm.all_to_all_v(bufs);
            out.iter().map(|b| b.len()).sum::<usize>()
        });
        assert_eq!(results, vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "one buffer per rank")]
    fn alltoall_rejects_wrong_buffer_count() {
        let w = world(1, 2);
        w.run(|comm| {
            let _ = comm.all_to_all_v(vec![Vec::new()]);
        });
    }
}
