//! Accounting records for communication operations.

use exflow_topology::collective_cost::BytesByClass;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// The kind of operation a [`CommRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// AlltoallV — token dispatch or combine.
    Alltoall,
    /// AllGatherV — context-coherence broadcast of contexts/new tokens.
    AllGather,
    /// Barrier — clock synchronization only, no payload.
    Barrier,
    /// Expert-weight migration — bulk point-to-point transfers issued by
    /// the online re-placement engine between serving windows.
    Migration,
}

impl OpKind {
    /// All operation kinds.
    pub const ALL: [OpKind; 4] = [
        OpKind::Alltoall,
        OpKind::AllGather,
        OpKind::Barrier,
        OpKind::Migration,
    ];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Alltoall => "alltoall",
            OpKind::AllGather => "allgather",
            OpKind::Barrier => "barrier",
            OpKind::Migration => "migration",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One rank's accounting for one collective invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommRecord {
    /// What operation this was.
    pub op: OpKind,
    /// Rank that recorded it.
    pub rank: usize,
    /// Virtual time when the rank entered the operation.
    pub start: f64,
    /// Virtual time when the rank left the operation.
    pub end: f64,
    /// Bytes this rank *sent*, bucketed by link class.
    pub sent: BytesByClass,
}

impl CommRecord {
    /// Elapsed virtual time this rank spent inside the op.
    pub fn elapsed(&self) -> f64 {
        self.end - self.start
    }
}

/// Aggregated totals for one [`OpKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpTotals {
    /// Number of (rank, invocation) records folded in.
    pub records: u64,
    /// Sum over ranks of time spent inside the op.
    pub rank_time_sum: f64,
    /// Max single-record elapsed time (critical-path proxy).
    pub max_elapsed: f64,
    /// Bytes sent, bucketed by link class, summed over ranks.
    pub sent: BytesByClass,
}

/// Thread-safe accumulator of [`CommRecord`]s shared by all rank threads.
///
/// The engine reads it back after a run to build time-breakdown and
/// communication-volume reports (paper Figs. 6 and 9, Table I).
#[derive(Debug, Default)]
pub struct CommStats {
    // Ordered map per the determinism contract (detlint D001): snapshots
    // iterate in OpKind order whatever the record arrival interleaving.
    inner: Mutex<BTreeMap<OpKind, OpTotals>>,
}

impl CommStats {
    /// Empty stats.
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Fold one record into the totals.
    pub fn record(&self, rec: CommRecord) {
        let mut map = self.inner.lock();
        let t = map.entry(rec.op).or_default();
        t.records += 1;
        t.rank_time_sum += rec.elapsed();
        t.max_elapsed = t.max_elapsed.max(rec.elapsed());
        t.sent.merge(&rec.sent);
    }

    /// Snapshot the totals for one op kind.
    pub fn totals(&self, op: OpKind) -> OpTotals {
        self.inner.lock().get(&op).copied().unwrap_or_default()
    }

    /// Snapshot everything, in `OpKind` order.
    pub fn all_totals(&self) -> BTreeMap<OpKind, OpTotals> {
        self.inner.lock().clone()
    }

    /// Drop all accumulated records.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: OpKind, start: f64, end: f64, intra: u64, inter: u64) -> CommRecord {
        let sent = BytesByClass {
            intra_node: intra,
            inter_node: inter,
            ..BytesByClass::default()
        };
        CommRecord {
            op,
            rank: 0,
            start,
            end,
            sent,
        }
    }

    #[test]
    fn elapsed_is_end_minus_start() {
        assert_eq!(rec(OpKind::Alltoall, 1.0, 3.5, 0, 0).elapsed(), 2.5);
    }

    #[test]
    fn stats_accumulate_per_op() {
        let stats = CommStats::new();
        stats.record(rec(OpKind::Alltoall, 0.0, 1.0, 100, 50));
        stats.record(rec(OpKind::Alltoall, 1.0, 4.0, 10, 5));
        stats.record(rec(OpKind::AllGather, 0.0, 0.5, 1, 1));

        let a2a = stats.totals(OpKind::Alltoall);
        assert_eq!(a2a.records, 2);
        assert!((a2a.rank_time_sum - 4.0).abs() < 1e-12);
        assert!((a2a.max_elapsed - 3.0).abs() < 1e-12);
        assert_eq!(a2a.sent.intra_node, 110);
        assert_eq!(a2a.sent.inter_node, 55);

        let ag = stats.totals(OpKind::AllGather);
        assert_eq!(ag.records, 1);
        // Barrier untouched.
        assert_eq!(stats.totals(OpKind::Barrier).records, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let stats = CommStats::new();
        stats.record(rec(OpKind::Barrier, 0.0, 0.1, 0, 0));
        stats.reset();
        assert_eq!(stats.totals(OpKind::Barrier).records, 0);
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        use std::sync::Arc;
        let stats = Arc::new(CommStats::new());
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        s.record(CommRecord {
                            op: OpKind::Alltoall,
                            rank: r,
                            start: i as f64,
                            end: i as f64 + 1.0,
                            sent: BytesByClass::default(),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.totals(OpKind::Alltoall).records, 400);
    }
}
