//! Per-rank virtual time.

/// A monotonically advancing virtual clock, one per simulated GPU rank.
///
/// All latencies the suite reports are differences of these clocks. Compute
/// phases call [`VirtualClock::advance`] with model-derived durations;
/// communication advances clocks through the send/receive rules in
/// [`crate::world`]:
///
/// * a send serializes on the sender (the clock advances by the α–β transfer
///   time) and stamps the message with its completion time;
/// * a receive waits: the receiver clock becomes the max of its own time and
///   the message's arrival stamp.
///
/// The result is a deterministic happens-before ordering identical across
/// runs regardless of host scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now: 0.0 }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by a non-negative duration (compute, local copies).
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "cannot advance a clock backwards ({dt})");
        self.now += dt;
    }

    /// Wait until at least `t` (message arrival, barrier release).
    #[inline]
    pub fn wait_until(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wait_until_never_rewinds() {
        let mut c = VirtualClock::new();
        c.advance(10.0);
        c.wait_until(5.0);
        assert_eq!(c.now(), 10.0);
        c.wait_until(12.0);
        assert_eq!(c.now(), 12.0);
    }
}
