//! # exflow-collectives
//!
//! A simulated multi-GPU communication layer: the substrate that stands in
//! for NCCL in this reproduction of ExFlow (IPDPS 2024).
//!
//! Every simulated GPU is a real OS thread. Messages are real byte buffers
//! moved through crossbeam channels, so the concurrency (and any ordering
//! bug) is genuine. *Time*, however, is virtual: each rank carries a
//! [`VirtualClock`] advanced by the α–β cost model from `exflow-topology`,
//! which makes every reported latency a deterministic function of
//! (bytes, link class) — independent of host load, exactly what the paper's
//! figures need.
//!
//! The API mirrors the collectives the ExFlow engine issues:
//!
//! * [`RankComm::all_to_all_v`] — the token dispatch/combine primitive;
//! * [`RankComm::all_gather_v`] — the context-coherence primitive;
//! * [`RankComm::barrier`] — clock synchronization between iterations.
//!
//! ```
//! use exflow_collectives::CommWorld;
//! use exflow_topology::{ClusterSpec, CostModel};
//!
//! let world = CommWorld::new(ClusterSpec::new(1, 4).unwrap(), CostModel::wilkes3());
//! let results = world.run(|comm| {
//!     // Every rank contributes its rank id; AllGather returns all of them.
//!     let gathered = comm.all_gather_v(vec![comm.rank().0 as u8]);
//!     gathered.into_iter().map(|b| b[0]).collect::<Vec<u8>>()
//! });
//! for r in &results {
//!     assert_eq!(r, &[0, 1, 2, 3]);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod record;
pub mod world;

pub use clock::VirtualClock;
pub use error::CommError;
pub use record::{CommRecord, CommStats, OpKind};
pub use world::{CommWorld, RankComm};
