//! Error type for the simulated communicator.

use std::fmt;

/// Errors surfaced by the simulated communication world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank disconnected (its thread panicked or returned early)
    /// while this rank was waiting for a message.
    PeerDisconnected {
        /// The rank that observed the disconnect.
        at_rank: usize,
    },
    /// A buffer count did not match the world size.
    BadBufferCount {
        /// Number of buffers supplied.
        got: usize,
        /// Number of buffers required (the world size).
        expected: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerDisconnected { at_rank } => {
                write!(f, "rank {at_rank}: peer disconnected mid-collective")
            }
            CommError::BadBufferCount { got, expected } => {
                write!(f, "expected {expected} buffers (one per rank), got {got}")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_details() {
        assert!(CommError::PeerDisconnected { at_rank: 3 }
            .to_string()
            .contains('3'));
        let e = CommError::BadBufferCount {
            got: 2,
            expected: 4,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('4'));
    }
}
