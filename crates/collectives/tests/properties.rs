//! Property-based tests: the simulated communicator against structural
//! invariants and the analytic cost model from `exflow-topology`.

use exflow_collectives::{CommWorld, OpKind};
use exflow_topology::{ClusterSpec, CollectiveCostModel, CostModel};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=4, 1usize..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alltoall_is_a_permutation_of_payloads((nodes, gpn) in arb_shape(), seed in 0u64..100) {
        let world = CommWorld::new(
            ClusterSpec::new(nodes, gpn).unwrap(),
            CostModel::wilkes3(),
        );
        let w = nodes * gpn;
        let results = world.run(|comm| {
            let me = comm.rank().0;
            let bufs: Vec<Vec<u8>> = (0..w)
                .map(|dst| {
                    let n = ((seed + (me * w + dst) as u64) % 17) as usize;
                    vec![(me * w + dst) as u8; n]
                })
                .collect();
            comm.all_to_all_v(bufs)
        });
        // received[dst][src] must equal what src built for dst.
        for (dst, received) in results.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                let n = ((seed + (src * w + dst) as u64) % 17) as usize;
                prop_assert_eq!(buf.len(), n);
                prop_assert!(buf.iter().all(|&b| b == (src * w + dst) as u8));
            }
        }
    }

    #[test]
    fn alltoall_byte_accounting_matches_analytic((nodes, gpn) in arb_shape(), bytes in 1usize..4096) {
        let cluster = ClusterSpec::new(nodes, gpn).unwrap();
        let world = CommWorld::new(cluster, CostModel::wilkes3());
        let w = nodes * gpn;
        world.run(|comm| {
            comm.all_to_all_v(vec![vec![0u8; bytes]; w]);
        });
        let sim = world.stats().totals(OpKind::Alltoall).sent;
        let analytic = CollectiveCostModel::new(cluster, CostModel::wilkes3())
            .alltoallv_bytes(&vec![vec![bytes as u64; w]; w]);
        prop_assert_eq!(sim.local, analytic.local);
        prop_assert_eq!(sim.intra_node, analytic.intra_node);
        prop_assert_eq!(sim.inter_node, analytic.inter_node);
    }

    #[test]
    fn allgather_byte_accounting_matches_analytic((nodes, gpn) in arb_shape(), bytes in 1usize..4096) {
        let cluster = ClusterSpec::new(nodes, gpn).unwrap();
        let world = CommWorld::new(cluster, CostModel::wilkes3());
        world.run(|comm| {
            comm.all_gather_v(vec![0u8; bytes]);
        });
        let sim = world.stats().totals(OpKind::AllGather).sent;
        let analytic = CollectiveCostModel::new(cluster, CostModel::wilkes3())
            .allgatherv_bytes(&vec![bytes as u64; nodes * gpn]);
        prop_assert_eq!(sim.total(), analytic.total());
    }

    #[test]
    fn clocks_never_decrease((nodes, gpn) in arb_shape()) {
        let world = CommWorld::new(
            ClusterSpec::new(nodes, gpn).unwrap(),
            CostModel::wilkes3(),
        );
        let w = nodes * gpn;
        let monotone = world.run(|comm| {
            let mut last = comm.now();
            let mut ok = true;
            for round in 0..3 {
                comm.advance(1e-6 * (round + 1) as f64);
                comm.all_to_all_v(vec![vec![0u8; 64]; w]);
                ok &= comm.now() >= last;
                last = comm.now();
                comm.all_gather_v(vec![0u8; 32]);
                ok &= comm.now() >= last;
                last = comm.now();
                comm.barrier();
                ok &= comm.now() >= last;
                last = comm.now();
            }
            ok
        });
        prop_assert!(monotone.into_iter().all(|b| b));
    }

    #[test]
    fn barrier_equalizes_clocks((nodes, gpn) in arb_shape(), skews in proptest::collection::vec(0.0f64..10.0, 16)) {
        let world = CommWorld::new(
            ClusterSpec::new(nodes, gpn).unwrap(),
            CostModel::wilkes3(),
        );
        let times = world.run(|comm| {
            comm.advance(skews[comm.rank().0 % skews.len()]);
            comm.barrier();
            comm.now()
        });
        let first = times[0];
        for t in times {
            prop_assert!((t - first).abs() < 1e-12);
        }
    }
}
