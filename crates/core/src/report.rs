//! Inference run reports: per-operator time breakdown, locality, traffic.

use std::collections::VecDeque;

use exflow_placement::ReplanCost;
use exflow_topology::collective_cost::BytesByClass;

use crate::modes::ParallelismMode;

/// Virtual time spent in each operator class, summed over iterations
/// (averaged across ranks in an [`InferenceReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpBreakdown {
    /// Gating projections.
    pub gating: f64,
    /// Attention (context-dependent compute).
    pub attention: f64,
    /// Expert FFN compute.
    pub expert_ffn: f64,
    /// Alltoall collectives (dispatch, plus combine in vanilla mode).
    pub alltoall: f64,
    /// AllGather collectives (context coherence).
    pub allgather: f64,
    /// Time spent waiting at collective entry for compute stragglers
    /// (MoE load imbalance). Collectives are synchronization points, so
    /// this wait is real; it is kept out of `alltoall`/`allgather` so those
    /// report pure communication cost, as the paper's figures do.
    pub imbalance: f64,
}

impl OpBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.gating
            + self.attention
            + self.expert_ffn
            + self.alltoall
            + self.allgather
            + self.imbalance
    }

    /// Communication share of the total (Alltoall + AllGather).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.alltoall + self.allgather) / t
        }
    }

    /// Alltoall share of the total (the paper's Fig. 9 annotation).
    pub fn alltoall_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.alltoall / t
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &OpBreakdown) {
        self.gating += other.gating;
        self.attention += other.attention;
        self.expert_ffn += other.expert_ffn;
        self.alltoall += other.alltoall;
        self.allgather += other.allgather;
        self.imbalance += other.imbalance;
    }

    /// Element-wise scale (for averaging across ranks).
    pub fn scaled(&self, f: f64) -> OpBreakdown {
        OpBreakdown {
            gating: self.gating * f,
            attention: self.attention * f,
            expert_ffn: self.expert_ffn * f,
            alltoall: self.alltoall * f,
            allgather: self.allgather * f,
            imbalance: self.imbalance * f,
        }
    }
}

/// Dispatch locality counters: where tokens' next experts lived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Total token-dispatch decisions.
    pub total: u64,
    /// Dispatches whose target expert was on the token's current GPU.
    pub same_gpu: u64,
    /// Dispatches whose target was on the same node (including same GPU).
    pub same_node: u64,
}

impl DispatchStats {
    /// Fraction of dispatches that stayed on the GPU.
    pub fn gpu_local_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.same_gpu as f64 / self.total as f64
        }
    }

    /// Fraction of dispatches that stayed on the node.
    pub fn node_local_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.same_node as f64 / self.total as f64
        }
    }

    /// Merge counters.
    pub fn merge(&mut self, other: &DispatchStats) {
        self.total += other.total;
        self.same_gpu += other.same_gpu;
        self.same_node += other.same_node;
    }
}

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Mode that produced this report.
    pub mode: ParallelismMode,
    /// Wall (virtual) time of the run: max final clock across ranks.
    pub total_time: f64,
    /// Mean per-rank operator breakdown.
    pub breakdown: OpBreakdown,
    /// Tokens processed (requests x iterations, summed over ranks).
    pub tokens_processed: u64,
    /// Dispatch locality counters summed over ranks.
    pub dispatch: DispatchStats,
    /// Alltoall bytes sent, by link class, summed over ranks and layers.
    pub alltoall_bytes: BytesByClass,
    /// AllGather bytes sent, by link class.
    pub allgather_bytes: BytesByClass,
}

impl InferenceReport {
    /// End-to-end generation throughput in tokens per (virtual) second.
    pub fn throughput(&self) -> f64 {
        if self.total_time == 0.0 {
            0.0
        } else {
            self.tokens_processed as f64 / self.total_time
        }
    }

    /// Total communication time per the breakdown.
    pub fn comm_time(&self) -> f64 {
        self.breakdown.alltoall + self.breakdown.allgather
    }
}

/// Aggregate expert-weight migration accounting for an online run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationStats {
    /// Re-plan events that moved at least one expert (or churned a
    /// replica).
    pub replans: u64,
    /// Expert relocations executed, summed over re-plans.
    pub experts_moved: u64,
    /// Replica copies created, summed over re-plans (each ships to its
    /// plan-chosen target subset of GPUs).
    pub replicas_added: u64,
    /// Replica copies retired, summed over re-plans (free).
    pub replicas_dropped: u64,
    /// Migrated bytes, bucketed by link class.
    pub bytes: BytesByClass,
    /// Virtual time the weight copies occupy the links: the windowed
    /// online mode stalls for it, the request-level serving loop overlaps
    /// it with decode steps (contention-priced).
    pub time: f64,
}

/// One re-plan decision that actually migrated experts or churned
/// replicas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanEvent {
    /// Serving window after which the re-plan fired (0-based).
    pub window: usize,
    /// Drift signal (windowed divergence) that triggered it.
    pub drift: f64,
    /// Experts relocated by this re-plan.
    pub experts_moved: u64,
    /// Replica copies created by this re-plan.
    pub replicas_added: u64,
    /// Replica copies retired by this re-plan.
    pub replicas_dropped: u64,
    /// Bytes of expert weights migrated (owner moves + replica fan-out).
    pub bytes_moved: u64,
    /// The migration byte budget this re-plan ran under (after drift
    /// scaling and rollover, if enabled) — `bytes_moved` never exceeds it.
    pub budget_bytes: u64,
    /// Virtual time the migration exchange took.
    pub migration_time: f64,
    /// Migrated bytes bucketed by link class (the per-event split of
    /// `MigrationStats::bytes`).
    pub bytes_by_class: BytesByClass,
    /// What the re-plan solve itself cost, in the deterministic
    /// operation counts of [`exflow_placement::CostMeter`]: swap
    /// candidates considered, gains actually recomputed vs served from
    /// the swap-gain cache, and whether
    /// `OnlineConfig::replan_time_budget` truncated the descent (see
    /// [`crate::OnlineConfig::replan_time_budget`]).
    pub solver_cost: ReplanCost,
}

/// One fleet-membership change the serving loop processed (the
/// `FaultSchedule` event, stamped with the virtual time it fired).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMarker {
    /// Virtual time of the change.
    pub time: f64,
    /// GPU index in the provisioned fleet.
    pub gpu: usize,
    /// `true` for a rejoin/scale-up, `false` for a loss/scale-down.
    pub up: bool,
}

/// Fault/recovery accounting of one serving run — the disruption section
/// of [`ServingReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DisruptionStats {
    /// In-flight requests whose decode step was cut short by a GPU loss
    /// and were re-queued (a request disrupted twice counts twice).
    pub requests_disrupted: u64,
    /// Decode steps that ran while an emergency restore copy contended
    /// for the links.
    pub steps_degraded: u64,
    /// Emergency re-placements executed (one per fleet event that moved,
    /// restored, or failed over at least one expert).
    pub emergency_replans: u64,
    /// Expert-weight bytes the emergency restores copied (replica
    /// failovers are free and contribute nothing here).
    pub emergency_bytes: u64,
    /// Every fleet change, in processing order.
    pub faults: Vec<FaultMarker>,
}

/// Result of one online serving run (`InferenceEngine::run_online`): the
/// per-window inference reports plus the drift trajectory and every
/// migration the incremental re-placement engine executed.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Mode that produced this report.
    pub mode: ParallelismMode,
    /// One report per serving window, in window order.
    pub windows: Vec<InferenceReport>,
    /// Drift signal after each window (same length as `windows`).
    pub drift: Vec<f64>,
    /// Re-plans that moved experts, in firing order.
    pub replans: Vec<ReplanEvent>,
    /// Aggregate migration accounting.
    pub migrations: MigrationStats,
    /// Worst-case extra replica copies any GPU holds at the end of the
    /// run (the `ReplicationPlan::extra_copies_per_gpu` convention; 0
    /// when replication is disabled).
    pub final_extra_copies: u64,
}

impl OnlineReport {
    /// Total virtual time: serving windows plus migration stalls.
    pub fn total_time(&self) -> f64 {
        self.windows.iter().map(|w| w.total_time).sum::<f64>() + self.migrations.time
    }

    /// Tokens generated across all windows.
    pub fn tokens_processed(&self) -> u64 {
        self.windows.iter().map(|w| w.tokens_processed).sum()
    }

    /// End-to-end throughput including migration stalls.
    pub fn throughput(&self) -> f64 {
        let t = self.total_time();
        if t == 0.0 {
            0.0
        } else {
            self.tokens_processed() as f64 / t
        }
    }

    /// Dispatch locality counters merged over all windows.
    pub fn dispatch(&self) -> DispatchStats {
        let mut d = DispatchStats::default();
        for w in &self.windows {
            d.merge(&w.dispatch);
        }
        d
    }

    /// Alltoall bytes sent, merged over all windows.
    pub fn alltoall_bytes(&self) -> BytesByClass {
        let mut b = BytesByClass::default();
        for w in &self.windows {
            b.merge(&w.alltoall_bytes);
        }
        b
    }
}

/// Result of one request-level serving run
/// (`InferenceEngine::run_serving`): per-request tail latency, queueing
/// and batching trajectories, plus the same drift/re-plan accounting the
/// windowed online mode reports.
///
/// Latency percentiles are nearest-rank over the sorted per-request
/// latencies, so `p50() <= p95() <= p99()` holds by construction:
///
/// ```
/// use exflow_core::ServingReport;
///
/// let r = ServingReport {
///     latencies: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
///     ..ServingReport::default()
/// };
/// assert_eq!(r.percentile(50.0), 5.0);
/// assert_eq!(r.p95(), 10.0);
/// assert!(r.p50() <= r.p95() && r.p95() <= r.p99());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Mode that produced this report.
    pub mode: ParallelismMode,
    /// Per-request latency (completion minus arrival time), sorted
    /// ascending.
    pub latencies: Vec<f64>,
    /// Offered load: requests divided by the span of the arrival process
    /// (how fast traffic *wanted* to be served).
    pub offered_load: f64,
    /// Virtual time of the last request completion.
    pub makespan: f64,
    /// Queue-depth trajectory: `(virtual time, waiting requests)` sampled
    /// at every arrival and batch admission.
    pub queue_depth: Vec<(f64, usize)>,
    /// Batch-occupancy histogram: `batch_occupancy[s]` counts decode
    /// steps that ran with `s` requests in flight (index 0 stays 0).
    pub batch_occupancy: Vec<u64>,
    /// Decode steps executed (batches fed through the dispatch path).
    pub steps: u64,
    /// Virtual time the server spent actually stepping, including any
    /// migration-contention surcharge but excluding idle waits for
    /// arrivals; `busy / makespan` is the realized server utilization.
    pub busy: f64,
    /// Dispatch locality counters summed over every decode step.
    pub dispatch: DispatchStats,
    /// Drift signal at each serving-window boundary the run crossed.
    pub drift: Vec<f64>,
    /// Re-plans that moved experts, in firing order (`window` is the
    /// serving window that ended when the re-plan fired).
    pub replans: Vec<ReplanEvent>,
    /// Aggregate migration accounting; weight copies overlap with
    /// serving but contend for links and defer the new plan's benefit,
    /// so re-placement cost still shows up in the latency tail.
    pub migrations: MigrationStats,
    /// Completion events in completion order: `(virtual completion time,
    /// latency)` — the time-resolved view `latencies` loses by sorting,
    /// needed by the event stream (`crate::events`) and the recovery
    /// clock.
    pub completions: Vec<(f64, f64)>,
    /// Fault/recovery disruption accounting (all-zero on fault-free
    /// runs).
    pub disruption: DisruptionStats,
    /// Length of one serving window in virtual seconds (copied from the
    /// `ServingConfig`; 0.0 on defaulted reports).
    pub window_duration: f64,
}

impl Default for ServingReport {
    fn default() -> Self {
        ServingReport {
            mode: ParallelismMode::Vanilla,
            latencies: Vec::new(),
            offered_load: 0.0,
            makespan: 0.0,
            queue_depth: Vec::new(),
            batch_occupancy: Vec::new(),
            steps: 0,
            busy: 0.0,
            dispatch: DispatchStats::default(),
            drift: Vec::new(),
            replans: Vec::new(),
            migrations: MigrationStats::default(),
            completions: Vec::new(),
            disruption: DisruptionStats::default(),
            window_duration: 0.0,
        }
    }
}

/// Completions in the rolling window [`ServingReport::recovery_time`]
/// evaluates the post-fault latency tail over.
pub const RECOVERY_WINDOW: usize = 32;

/// Nearest-rank percentile over an ascending-sorted slice; 0.0 when
/// empty, so degenerate (0-/1-request) runs stay defined.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

impl ServingReport {
    /// Requests served.
    pub fn n_requests(&self) -> usize {
        self.latencies.len()
    }

    /// Nearest-rank latency percentile; `p` in `[0, 100]`. Monotone in
    /// `p` because `latencies` is sorted, and defined (0.0) on empty and
    /// single-request runs alike.
    pub fn percentile(&self, p: f64) -> f64 {
        debug_assert!(self.latencies.windows(2).all(|w| w[0] <= w[1]));
        nearest_rank(&self.latencies, p)
    }

    /// Median request latency.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile request latency.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile request latency (the tail the gate watches).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Goodput: completed requests per virtual second of makespan. Always
    /// at most `offered_load`, since the last completion trails the last
    /// arrival.
    pub fn goodput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.latencies.len() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Mean requests in flight per executed decode step.
    pub fn mean_batch_occupancy(&self) -> f64 {
        let steps: u64 = self.batch_occupancy.iter().sum();
        if steps == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .batch_occupancy
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        weighted as f64 / steps as f64
    }

    /// Deepest the waiting queue ever got.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Nearest-rank p99 over requests that completed strictly *before*
    /// the first GPU loss — the pre-fault service level the fleet must
    /// recover to. `None` when the run had no loss event or nothing
    /// completed before it.
    pub fn pre_fault_p99(&self) -> Option<f64> {
        let fault = self.disruption.faults.iter().find(|m| !m.up)?.time;
        let mut pre: Vec<f64> = self
            .completions
            .iter()
            .filter(|&&(t, _)| t < fault)
            .map(|&(_, l)| l)
            .collect();
        if pre.is_empty() {
            return None;
        }
        pre.sort_by(f64::total_cmp);
        Some(nearest_rank(&pre, 99.0))
    }

    /// Virtual time from the first GPU loss until the rolling p99 over
    /// the last [`RECOVERY_WINDOW`] completions first drops back to the
    /// pre-fault p99. `None` when the run never faulted, nothing
    /// completed before the fault, or the tail never recovered within
    /// the run.
    pub fn recovery_time(&self) -> Option<f64> {
        let target = self.pre_fault_p99()?;
        let fault = self.disruption.faults.iter().find(|m| !m.up)?.time;
        let mut ring: VecDeque<f64> = VecDeque::with_capacity(RECOVERY_WINDOW);
        for &(t, lat) in self.completions.iter().filter(|&&(t, _)| t >= fault) {
            if ring.len() == RECOVERY_WINDOW {
                ring.pop_front();
            }
            ring.push_back(lat);
            if ring.len() == RECOVERY_WINDOW {
                let mut sorted: Vec<f64> = ring.iter().copied().collect();
                sorted.sort_by(f64::total_cmp);
                if nearest_rank(&sorted, 99.0) <= target {
                    return Some(t - fault);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> OpBreakdown {
        OpBreakdown {
            gating: 1.0,
            attention: 2.0,
            expert_ffn: 3.0,
            alltoall: 3.0,
            allgather: 1.0,
            imbalance: 0.0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let b = breakdown();
        assert_eq!(b.total(), 10.0);
        assert!((b.comm_fraction() - 0.4).abs() < 1e-12);
        assert!((b.alltoall_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        let b = OpBreakdown::default();
        assert_eq!(b.comm_fraction(), 0.0);
        assert_eq!(b.alltoall_fraction(), 0.0);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = breakdown();
        a.merge(&breakdown());
        assert_eq!(a.total(), 20.0);
        assert_eq!(a.scaled(0.5).total(), 10.0);
    }

    #[test]
    fn dispatch_fractions() {
        let d = DispatchStats {
            total: 10,
            same_gpu: 4,
            same_node: 7,
        };
        assert!((d.gpu_local_fraction() - 0.4).abs() < 1e-12);
        assert!((d.node_local_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_dispatch_is_fully_local() {
        let d = DispatchStats::default();
        assert_eq!(d.gpu_local_fraction(), 1.0);
        assert_eq!(d.node_local_fraction(), 1.0);
    }

    #[test]
    fn throughput_divides_tokens_by_time() {
        let r = InferenceReport {
            mode: ParallelismMode::Vanilla,
            total_time: 2.0,
            breakdown: breakdown(),
            tokens_processed: 100,
            dispatch: DispatchStats::default(),
            alltoall_bytes: BytesByClass::default(),
            allgather_bytes: BytesByClass::default(),
        };
        assert_eq!(r.throughput(), 50.0);
        assert_eq!(r.comm_time(), 4.0);
    }

    #[test]
    fn serving_percentiles_are_nearest_rank_and_monotone() {
        let r = ServingReport {
            latencies: (1..=100).map(f64::from).collect(),
            makespan: 50.0,
            ..ServingReport::default()
        };
        assert_eq!(r.n_requests(), 100);
        assert_eq!(r.percentile(0.0), 1.0);
        assert_eq!(r.p50(), 50.0);
        assert_eq!(r.p95(), 95.0);
        assert_eq!(r.p99(), 99.0);
        assert_eq!(r.percentile(100.0), 100.0);
        assert_eq!(r.goodput(), 2.0);
    }

    #[test]
    fn empty_serving_report_is_all_zero() {
        let r = ServingReport::default();
        assert_eq!(r.percentile(99.0), 0.0);
        assert_eq!(r.goodput(), 0.0);
        assert_eq!(r.mean_batch_occupancy(), 0.0);
        assert_eq!(r.max_queue_depth(), 0);
    }

    #[test]
    fn single_request_percentiles_are_defined() {
        let r = ServingReport {
            latencies: vec![3.5],
            ..ServingReport::default()
        };
        assert_eq!(r.percentile(0.0), 3.5);
        assert_eq!(r.p50(), 3.5);
        assert_eq!(r.p99(), 3.5);
        assert_eq!(r.percentile(100.0), 3.5);
    }

    #[test]
    fn zero_duration_goodput_is_zero() {
        let r = ServingReport {
            latencies: vec![1.0],
            makespan: 0.0,
            ..ServingReport::default()
        };
        assert_eq!(r.goodput(), 0.0);
        assert!(r.goodput().is_finite());
    }

    fn faulted_report(fault: f64, completions: Vec<(f64, f64)>) -> ServingReport {
        ServingReport {
            completions,
            disruption: DisruptionStats {
                faults: vec![FaultMarker {
                    time: fault,
                    gpu: 1,
                    up: false,
                }],
                ..DisruptionStats::default()
            },
            ..ServingReport::default()
        }
    }

    #[test]
    fn recovery_clock_finds_first_healthy_window() {
        // 50 pre-fault completions at latency 1.0, then a degraded burst
        // at 5.0, then a healthy tail back at 1.0. Recovery fires at the
        // first post-fault completion whose trailing RECOVERY_WINDOW-deep
        // p99 is back at the pre-fault p99 (1.0): the ring must flush all
        // RECOVERY_WINDOW - 1 degraded samples past the window edge.
        let mut completions: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 * 0.1, 1.0)).collect();
        let fault = 10.0;
        let mut t = fault;
        for _ in 0..(RECOVERY_WINDOW - 1) {
            t += 0.1;
            completions.push((t, 5.0));
        }
        for _ in 0..(2 * RECOVERY_WINDOW) {
            t += 0.1;
            completions.push((t, 1.0));
        }
        let r = faulted_report(fault, completions);
        assert_eq!(r.pre_fault_p99(), Some(1.0));
        let rec = r.recovery_time().expect("tail recovers");
        // (RECOVERY_WINDOW - 1) degraded + RECOVERY_WINDOW healthy samples
        // must pass before the ring holds only healthy latencies.
        let expected = 0.1 * (2 * RECOVERY_WINDOW - 1) as f64;
        assert!((rec - expected).abs() < 1e-9, "rec = {rec}");
    }

    #[test]
    fn recovery_is_none_without_fault_or_pre_fault_traffic() {
        // No fault markers at all.
        let r = ServingReport {
            completions: vec![(1.0, 1.0)],
            ..ServingReport::default()
        };
        assert_eq!(r.pre_fault_p99(), None);
        assert_eq!(r.recovery_time(), None);
        // Fault before anything completed.
        let r = faulted_report(0.0, vec![(1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(r.pre_fault_p99(), None);
        assert_eq!(r.recovery_time(), None);
        // Tail never recovers: every post-fault latency stays elevated.
        let mut completions: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 * 0.1, 1.0)).collect();
        completions.extend((0..100).map(|i| (10.0 + i as f64 * 0.1, 9.0)));
        let r = faulted_report(10.0, completions);
        assert_eq!(r.pre_fault_p99(), Some(1.0));
        assert_eq!(r.recovery_time(), None);
    }

    #[test]
    fn occupancy_and_queue_summaries() {
        let r = ServingReport {
            batch_occupancy: vec![0, 2, 0, 0, 6],
            queue_depth: vec![(0.0, 1), (1.0, 5), (2.0, 0)],
            ..ServingReport::default()
        };
        // (1*2 + 4*6) / 8 = 3.25
        assert!((r.mean_batch_occupancy() - 3.25).abs() < 1e-12);
        assert_eq!(r.max_queue_depth(), 5);
    }
}
