//! Inference run reports: per-operator time breakdown, locality, traffic.

use exflow_topology::collective_cost::BytesByClass;

use crate::modes::ParallelismMode;

/// Virtual time spent in each operator class, summed over iterations
/// (averaged across ranks in an [`InferenceReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpBreakdown {
    /// Gating projections.
    pub gating: f64,
    /// Attention (context-dependent compute).
    pub attention: f64,
    /// Expert FFN compute.
    pub expert_ffn: f64,
    /// Alltoall collectives (dispatch, plus combine in vanilla mode).
    pub alltoall: f64,
    /// AllGather collectives (context coherence).
    pub allgather: f64,
    /// Time spent waiting at collective entry for compute stragglers
    /// (MoE load imbalance). Collectives are synchronization points, so
    /// this wait is real; it is kept out of `alltoall`/`allgather` so those
    /// report pure communication cost, as the paper's figures do.
    pub imbalance: f64,
}

impl OpBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.gating
            + self.attention
            + self.expert_ffn
            + self.alltoall
            + self.allgather
            + self.imbalance
    }

    /// Communication share of the total (Alltoall + AllGather).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.alltoall + self.allgather) / t
        }
    }

    /// Alltoall share of the total (the paper's Fig. 9 annotation).
    pub fn alltoall_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.alltoall / t
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &OpBreakdown) {
        self.gating += other.gating;
        self.attention += other.attention;
        self.expert_ffn += other.expert_ffn;
        self.alltoall += other.alltoall;
        self.allgather += other.allgather;
        self.imbalance += other.imbalance;
    }

    /// Element-wise scale (for averaging across ranks).
    pub fn scaled(&self, f: f64) -> OpBreakdown {
        OpBreakdown {
            gating: self.gating * f,
            attention: self.attention * f,
            expert_ffn: self.expert_ffn * f,
            alltoall: self.alltoall * f,
            allgather: self.allgather * f,
            imbalance: self.imbalance * f,
        }
    }
}

/// Dispatch locality counters: where tokens' next experts lived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Total token-dispatch decisions.
    pub total: u64,
    /// Dispatches whose target expert was on the token's current GPU.
    pub same_gpu: u64,
    /// Dispatches whose target was on the same node (including same GPU).
    pub same_node: u64,
}

impl DispatchStats {
    /// Fraction of dispatches that stayed on the GPU.
    pub fn gpu_local_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.same_gpu as f64 / self.total as f64
        }
    }

    /// Fraction of dispatches that stayed on the node.
    pub fn node_local_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.same_node as f64 / self.total as f64
        }
    }

    /// Merge counters.
    pub fn merge(&mut self, other: &DispatchStats) {
        self.total += other.total;
        self.same_gpu += other.same_gpu;
        self.same_node += other.same_node;
    }
}

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Mode that produced this report.
    pub mode: ParallelismMode,
    /// Wall (virtual) time of the run: max final clock across ranks.
    pub total_time: f64,
    /// Mean per-rank operator breakdown.
    pub breakdown: OpBreakdown,
    /// Tokens processed (requests x iterations, summed over ranks).
    pub tokens_processed: u64,
    /// Dispatch locality counters summed over ranks.
    pub dispatch: DispatchStats,
    /// Alltoall bytes sent, by link class, summed over ranks and layers.
    pub alltoall_bytes: BytesByClass,
    /// AllGather bytes sent, by link class.
    pub allgather_bytes: BytesByClass,
}

impl InferenceReport {
    /// End-to-end generation throughput in tokens per (virtual) second.
    pub fn throughput(&self) -> f64 {
        if self.total_time == 0.0 {
            0.0
        } else {
            self.tokens_processed as f64 / self.total_time
        }
    }

    /// Total communication time per the breakdown.
    pub fn comm_time(&self) -> f64 {
        self.breakdown.alltoall + self.breakdown.allgather
    }
}

/// Aggregate expert-weight migration accounting for an online run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationStats {
    /// Re-plan events that moved at least one expert (or churned a
    /// replica).
    pub replans: u64,
    /// Expert relocations executed, summed over re-plans.
    pub experts_moved: u64,
    /// Replica copies created, summed over re-plans (each fans out to
    /// every non-owner GPU).
    pub replicas_added: u64,
    /// Replica copies retired, summed over re-plans (free).
    pub replicas_dropped: u64,
    /// Migrated bytes, bucketed by link class.
    pub bytes: BytesByClass,
    /// Virtual time spent migrating (the serving pipeline stalls for it).
    pub time: f64,
}

/// One re-plan decision that actually migrated experts or churned
/// replicas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanEvent {
    /// Serving window after which the re-plan fired (0-based).
    pub window: usize,
    /// Drift signal (windowed divergence) that triggered it.
    pub drift: f64,
    /// Experts relocated by this re-plan.
    pub experts_moved: u64,
    /// Replica copies created by this re-plan.
    pub replicas_added: u64,
    /// Replica copies retired by this re-plan.
    pub replicas_dropped: u64,
    /// Bytes of expert weights migrated (owner moves + replica fan-out).
    pub bytes_moved: u64,
    /// The migration byte budget this re-plan ran under (after drift
    /// scaling and rollover, if enabled) — `bytes_moved` never exceeds it.
    pub budget_bytes: u64,
    /// Virtual time the migration exchange took.
    pub migration_time: f64,
}

/// Result of one online serving run (`InferenceEngine::run_online`): the
/// per-window inference reports plus the drift trajectory and every
/// migration the incremental re-placement engine executed.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Mode that produced this report.
    pub mode: ParallelismMode,
    /// One report per serving window, in window order.
    pub windows: Vec<InferenceReport>,
    /// Drift signal after each window (same length as `windows`).
    pub drift: Vec<f64>,
    /// Re-plans that moved experts, in firing order.
    pub replans: Vec<ReplanEvent>,
    /// Aggregate migration accounting.
    pub migrations: MigrationStats,
    /// Worst-case extra replica copies any GPU holds at the end of the
    /// run (the `ReplicationPlan::extra_copies_per_gpu` convention; 0
    /// when replication is disabled).
    pub final_extra_copies: u64,
}

impl OnlineReport {
    /// Total virtual time: serving windows plus migration stalls.
    pub fn total_time(&self) -> f64 {
        self.windows.iter().map(|w| w.total_time).sum::<f64>() + self.migrations.time
    }

    /// Tokens generated across all windows.
    pub fn tokens_processed(&self) -> u64 {
        self.windows.iter().map(|w| w.tokens_processed).sum()
    }

    /// End-to-end throughput including migration stalls.
    pub fn throughput(&self) -> f64 {
        let t = self.total_time();
        if t == 0.0 {
            0.0
        } else {
            self.tokens_processed() as f64 / t
        }
    }

    /// Dispatch locality counters merged over all windows.
    pub fn dispatch(&self) -> DispatchStats {
        let mut d = DispatchStats::default();
        for w in &self.windows {
            d.merge(&w.dispatch);
        }
        d
    }

    /// Alltoall bytes sent, merged over all windows.
    pub fn alltoall_bytes(&self) -> BytesByClass {
        let mut b = BytesByClass::default();
        for w in &self.windows {
            b.merge(&w.alltoall_bytes);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> OpBreakdown {
        OpBreakdown {
            gating: 1.0,
            attention: 2.0,
            expert_ffn: 3.0,
            alltoall: 3.0,
            allgather: 1.0,
            imbalance: 0.0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let b = breakdown();
        assert_eq!(b.total(), 10.0);
        assert!((b.comm_fraction() - 0.4).abs() < 1e-12);
        assert!((b.alltoall_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        let b = OpBreakdown::default();
        assert_eq!(b.comm_fraction(), 0.0);
        assert_eq!(b.alltoall_fraction(), 0.0);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = breakdown();
        a.merge(&breakdown());
        assert_eq!(a.total(), 20.0);
        assert_eq!(a.scaled(0.5).total(), 10.0);
    }

    #[test]
    fn dispatch_fractions() {
        let d = DispatchStats {
            total: 10,
            same_gpu: 4,
            same_node: 7,
        };
        assert!((d.gpu_local_fraction() - 0.4).abs() < 1e-12);
        assert!((d.node_local_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_dispatch_is_fully_local() {
        let d = DispatchStats::default();
        assert_eq!(d.gpu_local_fraction(), 1.0);
        assert_eq!(d.node_local_fraction(), 1.0);
    }

    #[test]
    fn throughput_divides_tokens_by_time() {
        let r = InferenceReport {
            mode: ParallelismMode::Vanilla,
            total_time: 2.0,
            breakdown: breakdown(),
            tokens_processed: 100,
            dispatch: DispatchStats::default(),
            alltoall_bytes: BytesByClass::default(),
            allgather_bytes: BytesByClass::default(),
        };
        assert_eq!(r.throughput(), 50.0);
        assert_eq!(r.comm_time(), 4.0);
    }
}
