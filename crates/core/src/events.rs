//! Versioned JSONL event stream of a serving run: one record per serving
//! window, derived post-hoc from a [`ServingReport`] — the time-resolved
//! view a dashboard (or the `repro render-events` renderer) consumes.
//!
//! Each line is one flat JSON object carrying the window's latency
//! quantiles, completion count, queue depth, drift signal, re-plan and
//! replica churn, migrated bytes split by link class, and the fleet
//! fault/recovery markers that fired inside the window. Every record is
//! stamped with [`EVENT_SCHEMA`]; the parser rejects lines from any other
//! schema version, so downstream consumers can never silently misread a
//! field that moved.
//!
//! The workspace builds offline (no serde), so both directions are
//! hand-rolled: [`WindowEvent::to_json`] prints floats with Rust's
//! shortest round-trip formatting and [`WindowEvent::from_json`] parses
//! them back with `str::parse`, which recovers the exact bits — so
//! `from_json(to_json(e)) == e` holds field-for-field, and CI can assert
//! the round-trip on every emitted line.
//!
//! ```
//! use exflow_core::events::{events_from_report, WindowEvent, EVENT_SCHEMA};
//! use exflow_core::ServingReport;
//!
//! let report = ServingReport {
//!     completions: vec![(0.5, 0.5), (1.5, 0.7)],
//!     makespan: 1.5,
//!     window_duration: 1.0,
//!     ..ServingReport::default()
//! };
//! let events = events_from_report(&report);
//! assert_eq!(events.len(), 2);
//! let line = events[0].to_json();
//! assert!(line.contains(EVENT_SCHEMA));
//! assert_eq!(WindowEvent::from_json(&line).unwrap(), events[0]);
//! ```

use crate::report::ServingReport;

/// Schema tag every emitted line carries; bump on any field change.
pub const EVENT_SCHEMA: &str = "exflow-events/v1";

/// One serving window's record in the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEvent {
    /// Serving window index (0-based).
    pub window: usize,
    /// Window start, virtual seconds.
    pub t_start: f64,
    /// Window end, virtual seconds.
    pub t_end: f64,
    /// Requests that completed inside the window.
    pub completed: u64,
    /// Nearest-rank p50 latency of the window's completions (0 if none).
    pub p50: f64,
    /// Nearest-rank p95 latency of the window's completions (0 if none).
    pub p95: f64,
    /// Nearest-rank p99 latency of the window's completions (0 if none).
    pub p99: f64,
    /// Deepest the waiting queue got inside the window.
    pub queue_depth: usize,
    /// Drift signal at the window's close (0 when the run ended first).
    pub drift: f64,
    /// Drift-triggered re-plans that fired when this window ended.
    pub replans: u64,
    /// Migrated bytes over GPU-local links (drift re-plans).
    pub bytes_local: u64,
    /// Migrated bytes over intra-node links (drift re-plans).
    pub bytes_intra: u64,
    /// Migrated bytes over inter-node links (drift re-plans).
    pub bytes_inter: u64,
    /// Replica copies created by this window's re-plans.
    pub replicas_added: u64,
    /// Replica copies retired by this window's re-plans.
    pub replicas_dropped: u64,
    /// GPUs lost inside the window, in event order.
    pub gpus_down: Vec<usize>,
    /// GPUs rejoined inside the window, in event order.
    pub gpus_up: Vec<usize>,
}

fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Bucket a [`ServingReport`] into per-window [`WindowEvent`]s. The
/// stream spans every window any completion, queue sample, drift sample,
/// or fault marker landed in; an empty report (or a zero
/// `window_duration`, the defaulted-report convention) yields no events.
pub fn events_from_report(report: &ServingReport) -> Vec<WindowEvent> {
    let dur = report.window_duration;
    if dur <= 0.0 || !dur.is_finite() {
        return Vec::new();
    }
    let window_of = |t: f64| (t / dur) as usize;
    let mut last = report.drift.len().saturating_sub(1);
    for &(t, _) in &report.completions {
        last = last.max(window_of(t));
    }
    for &(t, _) in &report.queue_depth {
        last = last.max(window_of(t));
    }
    for m in &report.disruption.faults {
        last = last.max(window_of(m.time));
    }
    let n = if report.completions.is_empty()
        && report.queue_depth.is_empty()
        && report.disruption.faults.is_empty()
        && report.drift.is_empty()
    {
        return Vec::new();
    } else {
        last + 1
    };

    (0..n)
        .map(|w| {
            let mut lats: Vec<f64> = report
                .completions
                .iter()
                .filter(|&&(t, _)| window_of(t) == w)
                .map(|&(_, l)| l)
                .collect();
            lats.sort_by(f64::total_cmp);
            let queue_depth = report
                .queue_depth
                .iter()
                .filter(|&&(t, _)| window_of(t) == w)
                .map(|&(_, d)| d)
                .max()
                .unwrap_or(0);
            let (mut replans, mut ra, mut rd) = (0u64, 0u64, 0u64);
            let (mut bl, mut bi, mut bx) = (0u64, 0u64, 0u64);
            for ev in report.replans.iter().filter(|ev| ev.window == w) {
                replans += 1;
                ra += ev.replicas_added;
                rd += ev.replicas_dropped;
                bl += ev.bytes_by_class.local;
                bi += ev.bytes_by_class.intra_node;
                bx += ev.bytes_by_class.inter_node;
            }
            let gpus_down = report
                .disruption
                .faults
                .iter()
                .filter(|m| !m.up && window_of(m.time) == w)
                .map(|m| m.gpu)
                .collect();
            let gpus_up = report
                .disruption
                .faults
                .iter()
                .filter(|m| m.up && window_of(m.time) == w)
                .map(|m| m.gpu)
                .collect();
            WindowEvent {
                window: w,
                t_start: w as f64 * dur,
                t_end: (w + 1) as f64 * dur,
                completed: lats.len() as u64,
                p50: nearest_rank(&lats, 50.0),
                p95: nearest_rank(&lats, 95.0),
                p99: nearest_rank(&lats, 99.0),
                queue_depth,
                drift: report.drift.get(w).copied().unwrap_or(0.0),
                replans,
                bytes_local: bl,
                bytes_intra: bi,
                bytes_inter: bx,
                replicas_added: ra,
                replicas_dropped: rd,
                gpus_down,
                gpus_up,
            }
        })
        .collect()
}

fn fmt_usize_list(xs: &[usize]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(","))
}

impl WindowEvent {
    /// One JSONL line (no trailing newline). Floats print with shortest
    /// round-trip formatting, so the line re-parses to the exact bits.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{}\",\"window\":{},\"t_start\":{},\"t_end\":{},\"completed\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"queue_depth\":{},\"drift\":{},\"replans\":{},\"bytes_local\":{},\"bytes_intra\":{},\"bytes_inter\":{},\"replicas_added\":{},\"replicas_dropped\":{},\"gpus_down\":{},\"gpus_up\":{}}}",
            EVENT_SCHEMA,
            self.window,
            self.t_start,
            self.t_end,
            self.completed,
            self.p50,
            self.p95,
            self.p99,
            self.queue_depth,
            self.drift,
            self.replans,
            self.bytes_local,
            self.bytes_intra,
            self.bytes_inter,
            self.replicas_added,
            self.replicas_dropped,
            fmt_usize_list(&self.gpus_down),
            fmt_usize_list(&self.gpus_up),
        )
    }

    /// Parse one JSONL line emitted by [`WindowEvent::to_json`]. Rejects
    /// lines missing the `{}`-object shape, carrying an unknown schema
    /// tag, or missing/mistyping any field — the CI schema check.
    pub fn from_json(line: &str) -> Result<WindowEvent, String> {
        let fields = split_flat_object(line)?;
        let get = |key: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let schema = get("schema")?;
        let schema = schema
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("schema is not a string: {schema}"))?;
        if schema != EVENT_SCHEMA {
            return Err(format!(
                "schema mismatch: got {schema:?}, expected {EVENT_SCHEMA:?}"
            ));
        }
        let num_u64 = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse::<u64>()
                .map_err(|e| format!("field {key:?}: {e}"))
        };
        let num_usize = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse::<usize>()
                .map_err(|e| format!("field {key:?}: {e}"))
        };
        let num_f64 = |key: &str| -> Result<f64, String> {
            get(key)?
                .parse::<f64>()
                .map_err(|e| format!("field {key:?}: {e}"))
        };
        let list = |key: &str| -> Result<Vec<usize>, String> {
            let raw = get(key)?;
            let inner = raw
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| format!("field {key:?} is not a list: {raw}"))?;
            if inner.trim().is_empty() {
                return Ok(Vec::new());
            }
            inner
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse::<usize>()
                        .map_err(|e| format!("field {key:?}: {e}"))
                })
                .collect()
        };
        Ok(WindowEvent {
            window: num_usize("window")?,
            t_start: num_f64("t_start")?,
            t_end: num_f64("t_end")?,
            completed: num_u64("completed")?,
            p50: num_f64("p50")?,
            p95: num_f64("p95")?,
            p99: num_f64("p99")?,
            queue_depth: num_usize("queue_depth")?,
            drift: num_f64("drift")?,
            replans: num_u64("replans")?,
            bytes_local: num_u64("bytes_local")?,
            bytes_intra: num_u64("bytes_intra")?,
            bytes_inter: num_u64("bytes_inter")?,
            replicas_added: num_u64("replicas_added")?,
            replicas_dropped: num_u64("replicas_dropped")?,
            gpus_down: list("gpus_down")?,
            gpus_up: list("gpus_up")?,
        })
    }
}

/// Split one flat JSON object (string/number/int-list values, no nesting,
/// no escapes — exactly what `to_json` emits) into `(key, raw value)`
/// pairs.
fn split_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line}"))?;
    let mut fields = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted key at: {rest}"))?;
        let key_end = after_quote
            .find('"')
            .ok_or_else(|| format!("unterminated key at: {rest}"))?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?
            .trim_start();
        // Value runs to the next top-level comma (never inside a string
        // or a [...] list).
        let mut depth = 0usize;
        let mut in_str = false;
        let mut end = after_key.len();
        for (i, c) in after_key.char_indices() {
            match c {
                '"' => in_str = !in_str,
                '[' if !in_str => depth += 1,
                ']' if !in_str => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| format!("unbalanced ']' in value of {key:?}"))?
                }
                ',' if !in_str && depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        let value = after_key[..end].trim();
        if value.is_empty() {
            return Err(format!("empty value for key {key:?}"));
        }
        fields.push((key.to_string(), value.to_string()));
        rest = if end == after_key.len() {
            ""
        } else {
            after_key[end + 1..].trim_start()
        };
    }
    Ok(fields)
}

/// Emit the whole stream: one line per window, trailing newline included.
pub fn to_jsonl(events: &[WindowEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Render the event stream as a fixed-width text table (the
/// `repro render-events` output): one row per window, with fault markers
/// called out inline.
pub fn render_events(events: &[WindowEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6}  {:>18}  {:>5}  {:>9}  {:>9}  {:>9}  {:>5}  {:>7}  {:>7}  {:>14}  {:>9}  {}\n",
        "window",
        "span",
        "done",
        "p50",
        "p95",
        "p99",
        "queue",
        "drift",
        "replans",
        "bytes l/i/x",
        "replicas",
        "fleet"
    ));
    for ev in events {
        let fleet = if ev.gpus_down.is_empty() && ev.gpus_up.is_empty() {
            String::new()
        } else {
            let down: Vec<String> = ev.gpus_down.iter().map(|g| format!("-{g}")).collect();
            let up: Vec<String> = ev.gpus_up.iter().map(|g| format!("+{g}")).collect();
            [down, up].concat().join(" ")
        };
        out.push_str(&format!(
            "{:>6}  {:>8.2}..{:<8.2}  {:>5}  {:>9.4}  {:>9.4}  {:>9.4}  {:>5}  {:>7.4}  {:>7}  {:>4}/{:>4}/{:>4}  {:>4}/{:<4}  {}\n",
            ev.window,
            ev.t_start,
            ev.t_end,
            ev.completed,
            ev.p50,
            ev.p95,
            ev.p99,
            ev.queue_depth,
            ev.drift,
            ev.replans,
            ev.bytes_local,
            ev.bytes_intra,
            ev.bytes_inter,
            ev.replicas_added,
            ev.replicas_dropped,
            fleet
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DisruptionStats, FaultMarker, ReplanEvent};
    use exflow_topology::collective_cost::BytesByClass;

    fn sample_event() -> WindowEvent {
        WindowEvent {
            window: 3,
            t_start: 4.5,
            t_end: 6.0,
            completed: 17,
            p50: 0.1,
            p95: 1.0 / 3.0,
            p99: 2.7755575615628914e-17,
            queue_depth: 5,
            drift: 0.125,
            replans: 1,
            bytes_local: 0,
            bytes_intra: 1 << 20,
            bytes_inter: 3 << 20,
            replicas_added: 2,
            replicas_dropped: 1,
            gpus_down: vec![2, 5],
            gpus_up: vec![],
        }
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        let ev = sample_event();
        let line = ev.to_json();
        let back = WindowEvent::from_json(&line).unwrap();
        assert_eq!(back, ev);
        // Emit -> parse -> emit is a fixed point: the schema check CI
        // runs on every line.
        assert_eq!(back.to_json(), line);
        // Float bits survive exactly, not just approximately.
        assert_eq!(back.p99.to_bits(), ev.p99.to_bits());
    }

    #[test]
    fn unknown_schema_and_malformed_lines_are_rejected() {
        let ev = sample_event();
        let wrong = ev.to_json().replace("exflow-events/v1", "exflow-events/v0");
        assert!(WindowEvent::from_json(&wrong)
            .unwrap_err()
            .contains("schema mismatch"));
        assert!(WindowEvent::from_json("not json").is_err());
        assert!(WindowEvent::from_json("{}").unwrap_err().contains("schema"));
        let missing = ev.to_json().replace("\"p99\"", "\"p99x\"");
        assert!(WindowEvent::from_json(&missing)
            .unwrap_err()
            .contains("p99"));
    }

    #[test]
    fn report_buckets_by_window() {
        let report = ServingReport {
            completions: vec![(0.2, 0.2), (0.9, 0.4), (1.1, 0.3), (2.5, 0.9)],
            queue_depth: vec![(0.1, 2), (0.5, 4), (1.2, 1)],
            drift: vec![0.01, 0.2],
            replans: vec![ReplanEvent {
                window: 1,
                drift: 0.2,
                experts_moved: 3,
                replicas_added: 1,
                replicas_dropped: 0,
                bytes_moved: 3000,
                budget_bytes: 4000,
                migration_time: 0.1,
                bytes_by_class: BytesByClass {
                    local: 1000,
                    intra_node: 2000,
                    inter_node: 0,
                },
                solver_cost: exflow_placement::ReplanCost {
                    considered: 40,
                    evaluated: 28,
                    reused: 12,
                    truncated: false,
                },
            }],
            disruption: DisruptionStats {
                faults: vec![
                    FaultMarker {
                        time: 1.5,
                        gpu: 2,
                        up: false,
                    },
                    FaultMarker {
                        time: 2.4,
                        gpu: 2,
                        up: true,
                    },
                ],
                ..DisruptionStats::default()
            },
            window_duration: 1.0,
            ..ServingReport::default()
        };
        let events = events_from_report(&report);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].completed, 2);
        assert_eq!(events[0].queue_depth, 4);
        assert_eq!(events[0].p50, 0.2);
        assert_eq!(events[0].p99, 0.4);
        assert_eq!(events[1].replans, 1);
        assert_eq!(events[1].bytes_intra, 2000);
        assert_eq!(events[1].replicas_added, 1);
        assert_eq!(events[1].gpus_down, vec![2]);
        assert_eq!(events[2].gpus_up, vec![2]);
        assert_eq!(events[2].completed, 1);
        // Every line of the stream round-trips.
        for (line, ev) in to_jsonl(&events).lines().zip(&events) {
            assert_eq!(&WindowEvent::from_json(line).unwrap(), ev);
        }
    }

    #[test]
    fn empty_and_defaulted_reports_emit_nothing() {
        assert!(events_from_report(&ServingReport::default()).is_empty());
        let idle = ServingReport {
            window_duration: 1.0,
            ..ServingReport::default()
        };
        assert!(events_from_report(&idle).is_empty());
    }

    #[test]
    fn renderer_mentions_fleet_churn() {
        let ev = sample_event();
        let text = render_events(&[ev]);
        assert!(text.contains("window"));
        assert!(text.contains("-2 -5"));
    }
}
