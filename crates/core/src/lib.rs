//! # exflow-core
//!
//! The ExFlow inference engine — the primary contribution of "Exploiting
//! Inter-Layer Expert Affinity for Accelerating Mixture-of-Experts Model
//! Inference" (IPDPS 2024), reimplemented over this repo's simulated
//! multi-GPU substrate.
//!
//! Three execution modes are provided (see [`ParallelismMode`]):
//!
//! * **Vanilla** — the DeepSpeed-MoE baseline: data-parallel contexts mean
//!   every MoE layer needs *two* Alltoalls (dispatch to experts, combine
//!   back home for the next attention).
//! * **ContextCoherent** — ExFlow without affinity: every GPU holds every
//!   token's context (maintained by one AllGather per generation
//!   iteration), so tokens compute attention *in place* and the combine
//!   Alltoall disappears.
//! * **ContextCoherentAffinity** — full ExFlow: context coherence plus the
//!   staged affinity placement from `exflow-placement`, so most dispatch
//!   traffic never leaves the GPU (or at worst the node).
//!
//! The engine runs real rank threads (via `exflow-collectives`), moves real
//! token frames, executes real (reduced-dimension) expert FFN matmuls, and
//! reports deterministic virtual-time breakdowns per operator — the
//! quantities behind the paper's Figs. 6–10.
//!
//! Beyond the paper's offline setting, the engine also serves
//! **non-stationary** traffic: [`InferenceEngine::run_online`] maintains a
//! decayed streaming affinity estimate of the live routing, detects drift
//! against the estimate the current placement was solved for, and executes
//! budgeted incremental re-placements (expert-weight migrations priced on
//! the cluster's links) between serving windows — configured by
//! [`OnlineConfig`] via `EngineConfig::online`.
//!
//! On top of that sits the **request-level serving front-end**
//! ([`serving`]): [`InferenceEngine::run_serving`] drives a deterministic
//! discrete-event loop over a seeded arrival process
//! (`exflow_model::arrival`), queues requests, assembles decode batches
//! under a pluggable [`BatchPolicy`] with continuous batching, and reports
//! p50/p95/p99 request latency, goodput, queue-depth and batch-occupancy
//! trajectories in a [`ServingReport`] — with the online mode's
//! drift-triggered re-placement interleaved into serving time.
//!
//! All of these paths share one front door: [`Scenario`] names a run's
//! mode plus its optional drift, serving, fault, and replication layers,
//! and [`InferenceEngine::run_scenario`] dispatches it (the per-path
//! `run_*` methods survive as deprecated wrappers). The serving loop also
//! tolerates **fleet churn**: a seeded `exflow_model::FaultSchedule`
//! injects GPU loss/rejoin events, losses fail over to replicas or
//! trigger emergency restores, and the disruption lands in
//! [`ServingReport`]'s `DisruptionStats`. Every serving run can be
//! flattened into a versioned JSONL event stream ([`events`]) — one
//! record per serving window — for dashboards and the `repro
//! render-events` renderer.
//!
//! ```
//! use exflow_core::{InferenceEngine, ParallelismMode, Scenario};
//! use exflow_model::presets::moe_gpt_m;
//! use exflow_topology::ClusterSpec;
//!
//! let engine = InferenceEngine::builder(moe_gpt_m(8), ClusterSpec::new(2, 4).unwrap())
//!     .requests_per_gpu(16)
//!     .n_iterations(2)
//!     .build();
//! let baseline = engine
//!     .run_scenario(&Scenario::offline(ParallelismMode::Vanilla))
//!     .expect_offline();
//! let exflow = engine
//!     .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity))
//!     .expect_offline();
//! assert!(exflow.throughput() > baseline.throughput());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commvolume;
pub mod engine;
pub mod events;
pub mod frame;
pub mod modes;
pub mod report;
pub mod scenario;
pub mod serving;

pub use engine::{
    EngineBuilder, EngineConfig, InferenceEngine, OnlineConfig, ReplanPolicy, ReplicaPlacement,
};
pub use events::{events_from_report, render_events, to_jsonl, WindowEvent, EVENT_SCHEMA};
pub use exflow_placement::{
    GapBackend, LayerReplicas, Parallelism, ReplicaPolicy, ReplicationBudget, ReplicationPlan,
};
pub use modes::ParallelismMode;
pub use report::{
    DisruptionStats, FaultMarker, InferenceReport, MigrationStats, OnlineReport, OpBreakdown,
    ReplanEvent, ServingReport, RECOVERY_WINDOW,
};
pub use scenario::{Scenario, ScenarioReport};
pub use serving::{BatchPolicy, ServingConfig, MIGRATION_CONTENTION};
