//! The unified run front door: one [`Scenario`] value names everything a
//! run can vary — execution mode, drift schedule, serving front-end,
//! fault schedule, starting replication plan — and
//! [`InferenceEngine::run_scenario`] dispatches it to the right engine
//! path. The legacy entry points (`run`, `run_online`,
//! `run_with_replication`, `run_serving`) survive as thin deprecated
//! wrappers over the same implementations.
//!
//! Composition rules:
//!
//! * A bare scenario runs the offline generation benchmark.
//! * `with_replication` alone runs the offline benchmark with the plan's
//!   base placement and replica sets.
//! * `with_drift` alone runs the windowed online loop (drift detection +
//!   budgeted re-placement between windows).
//! * `with_serving` runs the request-level discrete-event loop; a drift
//!   schedule is optional (stationary traffic otherwise), a fault
//!   schedule is optional (no fleet churn otherwise), and a replication
//!   plan seeds the placement the loop starts from — the replicas
//!   emergency failover draws on.
//! * `with_faults` requires `with_serving`: fleet churn is an event-loop
//!   phenomenon, so there is nothing for a windowed or offline run to do
//!   with it.
//!
//! ```
//! use exflow_core::{InferenceEngine, ParallelismMode, Scenario};
//! use exflow_model::presets::moe_gpt_m;
//! use exflow_topology::ClusterSpec;
//!
//! let engine = InferenceEngine::builder(moe_gpt_m(8), ClusterSpec::new(2, 4).unwrap())
//!     .requests_per_gpu(16)
//!     .n_iterations(2)
//!     .build();
//! let report = engine.run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity));
//! assert!(report.offline().unwrap().throughput() > 0.0);
//! ```

use exflow_model::{DriftSchedule, FaultSchedule};
use exflow_placement::ReplicationPlan;

use crate::engine::InferenceEngine;
use crate::modes::ParallelismMode;
use crate::report::{InferenceReport, OnlineReport, ServingReport};
use crate::serving::ServingConfig;

/// One run's full specification: mode plus the optional layers that turn
/// an offline benchmark into an online, serving, or faulted run. Built
/// with [`Scenario::offline`] and the `with_*` methods; executed by
/// [`InferenceEngine::run_scenario`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Execution mode every layer runs under.
    pub mode: ParallelismMode,
    /// Non-stationary traffic: serving windows drawn from this schedule,
    /// with drift detection and budgeted re-placement between them.
    pub drift: Option<DriftSchedule>,
    /// Request-level serving front-end (arrivals, queueing, continuous
    /// batching).
    pub serving: Option<ServingConfig>,
    /// Fleet churn (GPU loss / rejoin / scale events); requires
    /// `serving`.
    pub faults: Option<FaultSchedule>,
    /// Starting placement + replica sets. Offline: run exactly this plan.
    /// Serving: seed the loop with it (failover capacity under faults).
    pub replication: Option<ReplicationPlan>,
}

impl Scenario {
    /// The bare offline benchmark in `mode`; layer on the rest with the
    /// `with_*` builders.
    pub fn offline(mode: ParallelismMode) -> Self {
        Scenario {
            mode,
            drift: None,
            serving: None,
            faults: None,
            replication: None,
        }
    }

    /// Serve non-stationary traffic drawn from `drift`.
    pub fn with_drift(mut self, drift: DriftSchedule) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Serve request-level traffic through the discrete-event front-end.
    pub fn with_serving(mut self, serving: ServingConfig) -> Self {
        self.serving = Some(serving);
        self
    }

    /// Inject fleet churn into the serving loop.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Start from an explicit replication plan instead of the
    /// engine-solved placement.
    pub fn with_replication(mut self, plan: ReplicationPlan) -> Self {
        self.replication = Some(plan);
        self
    }
}

/// What a [`Scenario`] produced: the report type tracks the execution
/// path the scenario dispatched to.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioReport {
    /// An offline generation benchmark (with or without replication).
    Offline(InferenceReport),
    /// A windowed online run.
    Online(OnlineReport),
    /// A request-level serving run.
    Serving(ServingReport),
}

impl ScenarioReport {
    /// The offline report, if this scenario ran offline.
    pub fn offline(&self) -> Option<&InferenceReport> {
        match self {
            ScenarioReport::Offline(r) => Some(r),
            _ => None,
        }
    }

    /// The windowed online report, if this scenario ran the online loop.
    pub fn online(&self) -> Option<&OnlineReport> {
        match self {
            ScenarioReport::Online(r) => Some(r),
            _ => None,
        }
    }

    /// The serving report, if this scenario ran the serving front-end.
    pub fn serving(&self) -> Option<&ServingReport> {
        match self {
            ScenarioReport::Serving(r) => Some(r),
            _ => None,
        }
    }

    /// The offline report, panicking if the scenario dispatched
    /// elsewhere (the common accessor in offline benchmarks).
    pub fn expect_offline(self) -> InferenceReport {
        match self {
            ScenarioReport::Offline(r) => r,
            other => panic!("scenario did not run offline: {other:?}"),
        }
    }

    /// The windowed online report, panicking if the scenario dispatched
    /// elsewhere.
    pub fn expect_online(self) -> OnlineReport {
        match self {
            ScenarioReport::Online(r) => r,
            other => panic!("scenario did not run the windowed online loop: {other:?}"),
        }
    }

    /// The serving report, panicking if the scenario did not serve
    /// requests (the common accessor in serving benchmarks).
    pub fn expect_serving(self) -> ServingReport {
        match self {
            ScenarioReport::Serving(r) => r,
            other => panic!("scenario did not run the serving front-end: {other:?}"),
        }
    }
}

impl InferenceEngine {
    /// Run one [`Scenario`] end to end. Dispatch follows the composition
    /// rules in the [module docs](crate::scenario); every path is
    /// deterministic, so equal scenarios produce equal reports.
    ///
    /// # Panics
    ///
    /// If the scenario composes layers that have no execution path:
    /// faults without serving, or a replication plan under the windowed
    /// (non-serving) drift loop.
    pub fn run_scenario(&self, scenario: &Scenario) -> ScenarioReport {
        let mode = scenario.mode;
        if let Some(serving) = &scenario.serving {
            let w = self.config().cluster.world_size();
            let stationary;
            let drift = match &scenario.drift {
                Some(d) => d,
                None => {
                    stationary = DriftSchedule::piecewise(&self.config().routing_spec, 1, 1);
                    &stationary
                }
            };
            let none;
            let faults = match &scenario.faults {
                Some(f) => f,
                None => {
                    none = FaultSchedule::none(w);
                    &none
                }
            };
            return ScenarioReport::Serving(self.run_serving_impl(
                mode,
                drift,
                serving,
                faults,
                scenario.replication.as_ref(),
            ));
        }
        assert!(
            scenario.faults.is_none(),
            "fault schedules require the serving front-end (add with_serving)"
        );
        if let Some(drift) = &scenario.drift {
            assert!(
                scenario.replication.is_none(),
                "explicit replication plans are a serving/offline layer; the windowed \
                 online loop manages its own (set `OnlineConfig::replica_memory_bytes`)"
            );
            return ScenarioReport::Online(self.run_online_impl(mode, drift));
        }
        if let Some(plan) = &scenario.replication {
            return ScenarioReport::Offline(self.run_with_replication_impl(mode, plan));
        }
        ScenarioReport::Offline(self.run_offline_impl(mode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::presets::moe_gpt_m;
    use exflow_model::ArrivalProcess;
    use exflow_topology::ClusterSpec;

    use crate::engine::OnlineConfig;
    use crate::serving::BatchPolicy;

    fn engine() -> InferenceEngine {
        let mut model = moe_gpt_m(8);
        model.n_layers = 4;
        InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
            .requests_per_gpu(8)
            .prompt_len(8)
            .profile_tokens(800)
            .online(OnlineConfig {
                drift_threshold: f64::INFINITY,
                decay: 0.3,
                ..OnlineConfig::default()
            })
            .seed(11)
            .build()
    }

    fn serving_cfg(e: &InferenceEngine, mode: ParallelismMode) -> ServingConfig {
        let step = e.probe_step_time(mode, 8);
        ServingConfig {
            arrival: ArrivalProcess::poisson(0.8 * 8.0 / (2.0 * step)),
            n_requests: 24,
            decode_steps: 2,
            batch: BatchPolicy::Greedy { max_size: 8 },
            window_duration: 50.0 * step,
        }
    }

    #[test]
    fn offline_scenario_matches_the_legacy_entry_point() {
        let eng = engine();
        let mode = ParallelismMode::ContextCoherentAffinity;
        let via_scenario = eng.run_scenario(&Scenario::offline(mode));
        #[allow(deprecated)]
        let legacy = eng.run(mode);
        assert_eq!(via_scenario.offline().unwrap(), &legacy);
        assert!(via_scenario.online().is_none());
        assert!(via_scenario.serving().is_none());
    }

    #[test]
    fn drift_scenario_matches_run_online() {
        let eng = engine();
        let mode = ParallelismMode::ContextCoherentAffinity;
        let drift = DriftSchedule::piecewise(&eng.config().routing_spec, 2, 4);
        let via_scenario = eng.run_scenario(&Scenario::offline(mode).with_drift(drift.clone()));
        #[allow(deprecated)]
        let legacy = eng.run_online(mode, &drift);
        assert_eq!(via_scenario.online().unwrap(), &legacy);
    }

    #[test]
    fn serving_scenario_matches_run_serving() {
        let eng = engine();
        let mode = ParallelismMode::ContextCoherentAffinity;
        let drift = DriftSchedule::piecewise(&eng.config().routing_spec, 2, 4);
        let cfg = serving_cfg(&eng, mode);
        let via_scenario = eng.run_scenario(
            &Scenario::offline(mode)
                .with_drift(drift.clone())
                .with_serving(cfg.clone()),
        );
        #[allow(deprecated)]
        let legacy = eng.run_serving(mode, &drift, &cfg);
        assert_eq!(via_scenario.serving().unwrap(), &legacy);
    }

    #[test]
    fn serving_without_drift_serves_stationary_traffic() {
        let eng = engine();
        let mode = ParallelismMode::ContextCoherentAffinity;
        let cfg = serving_cfg(&eng, mode);
        let r = eng
            .run_scenario(&Scenario::offline(mode).with_serving(cfg.clone()))
            .expect_serving();
        assert_eq!(r.n_requests(), cfg.n_requests);
        assert!(r.replans.is_empty(), "stationary traffic never re-plans");
    }

    #[test]
    #[should_panic(expected = "require the serving front-end")]
    fn faults_without_serving_are_rejected() {
        let eng = engine();
        let faults = FaultSchedule::gpu_loss(4, 1, 1.0);
        let _ = eng.run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity).with_faults(faults),
        );
    }

    #[test]
    fn replication_scenario_matches_run_with_replication() {
        let eng = engine();
        let mode = ParallelismMode::Vanilla;
        let plan = ReplicationPlan::bare(eng.placement_for(mode).clone());
        let via_scenario =
            eng.run_scenario(&Scenario::offline(mode).with_replication(plan.clone()));
        #[allow(deprecated)]
        let legacy = eng.run_with_replication(mode, &plan);
        assert_eq!(via_scenario.offline().unwrap(), &legacy);
    }
}
