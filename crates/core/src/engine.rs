//! The ExFlow inference engine: orchestration of attention, gating,
//! dispatch, expert compute, and context coherence over the simulated
//! cluster.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use exflow_affinity::{
    AffinitySnapshot, RoutingTrace, SnapshotDelta, SparseAffinity, StreamingAffinity,
};
use exflow_collectives::{CommRecord, CommWorld, OpKind, RankComm};
use exflow_model::routing::AffinityModelSpec;
use exflow_model::{
    ComputeCostModel, CorpusSpec, DriftSchedule, Expert, Matrix, ModelConfig, RoutingModel,
    TokenBatch,
};
use exflow_placement::online::MigrationPlan;
use exflow_placement::staged::solve_staged_with;
use exflow_placement::{
    solve_budgeted_metered, solve_budgeted_replicated_metered, GapBackend, LayerReplicas,
    Objective, Parallelism, Placement, ReplanCost, ReplicaPolicy, ReplicationBudget,
    ReplicationPlan, SwapGainCache,
};
use exflow_topology::collective_cost::BytesByClass;
use exflow_topology::{ClusterSpec, CostModel, Rank};

use crate::frame::{decode, encode, frame_size, Token};
use crate::modes::ParallelismMode;
use crate::report::{
    DispatchStats, InferenceReport, MigrationStats, OnlineReport, OpBreakdown, ReplanEvent,
};

/// Which GPUs a newly selected replica fans out to. This is the
/// config-level knob; a re-plan resolves it against the engine's cluster
/// shape into an [`exflow_placement::ReplicaPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaPlacement {
    /// One replica per node other than the owner's — the paper's staged
    /// node-then-GPU topology, and the default. The budgeted solver still
    /// races a full fan-out candidate, so this policy never finishes
    /// behind [`ReplicaPlacement::Everywhere`] at equal budgets.
    #[default]
    OnePerNode,
    /// A copy on every non-owner GPU (the Lina-style baseline).
    Everywhere,
}

/// Knobs of the online serving mode (`InferenceEngine::run_online`):
/// when to check for routing drift, how much drift justifies a re-plan,
/// how many bytes of expert weights one re-plan may migrate, and how much
/// per-GPU memory (if any) re-plans may spend on expert replicas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Serving windows between drift checks (the re-plan cadence).
    pub replan_every: usize,
    /// Windowed divergence above which a re-plan fires. `f64::INFINITY`
    /// disables re-placement entirely (the static-placement baseline).
    pub drift_threshold: f64,
    /// Byte budget of one re-plan: expert-weight bytes migrated per
    /// re-plan never exceed this. `u64::MAX` is the oracle end of the
    /// spectrum (migrate whatever the re-solve wants).
    pub migration_budget_bytes: u64,
    /// Exponential decay the streaming affinity estimator applies before
    /// folding in each new window (1.0 never forgets).
    pub decay: f64,
    /// Per-GPU byte budget for extra expert-replica copies (the
    /// `ReplicationPlan::extra_copies_per_gpu` convention: a copy on the
    /// owner GPU is the original and costs nothing). `0` — the default —
    /// disables replication-aware re-planning entirely: re-plans move
    /// owners only, exactly the pre-replication behavior.
    pub replica_memory_bytes: u64,
    /// Target subset each selected replica fans out to (see
    /// [`ReplicaPlacement`]); consulted only when `replica_memory_bytes`
    /// is nonzero.
    pub replica_policy: ReplicaPlacement,
    /// Roll migration budget a re-plan left unspent over to later
    /// re-plans (opt-in; the ROADMAP's "smarter budget allocation").
    pub budget_rollover: bool,
    /// Scale each re-plan's migration budget by the measured drift
    /// magnitude — small drift, small budget; the full budget unlocks at
    /// `2 x drift_threshold` (opt-in).
    pub scale_budget_by_drift: bool,
    /// Solver-time budget of one re-plan, in swap candidates *considered*
    /// (the deterministic operation count [`exflow_placement::CostMeter`]
    /// charges — not wall clock, so truncated runs stay bit-identical on
    /// any machine, thread count, or cache state). When the descent
    /// exhausts the budget it commits the best move found so far and
    /// stops; the truncation is reported per
    /// [`ReplanEvent`]. `u64::MAX` — the
    /// default — never truncates.
    pub replan_time_budget: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            replan_every: 1,
            drift_threshold: 0.05,
            migration_budget_bytes: u64::MAX,
            decay: 0.5,
            replica_memory_bytes: 0,
            replica_policy: ReplicaPlacement::default(),
            budget_rollover: false,
            scale_budget_by_drift: false,
            replan_time_budget: u64::MAX,
        }
    }
}

impl OnlineConfig {
    fn validate(&self) {
        assert!(self.replan_every >= 1, "replan cadence must be >= 1");
        assert!(self.drift_threshold >= 0.0, "drift threshold must be >= 0");
        assert!(
            self.decay > 0.0 && self.decay <= 1.0,
            "decay must be in (0, 1]"
        );
    }

    /// The migration byte budget of one re-plan firing at drift
    /// `drift_now`, given `carry` bytes rolled over from earlier re-plans.
    /// Pure arithmetic on the config toggles, so re-plan sizing is
    /// deterministic and unit-testable.
    ///
    /// With `scale_budget_by_drift` the budget grows linearly in the
    /// measured drift and the full budget unlocks at twice the firing
    /// threshold; `budget_rollover` then tops the result up with whatever
    /// earlier re-plans left unspent:
    ///
    /// ```
    /// use exflow_core::OnlineConfig;
    ///
    /// let oc = OnlineConfig {
    ///     drift_threshold: 0.05,
    ///     migration_budget_bytes: 1000,
    ///     scale_budget_by_drift: true,
    ///     budget_rollover: true,
    ///     ..OnlineConfig::default()
    /// };
    /// // Firing exactly at the threshold unlocks half the budget.
    /// assert_eq!(oc.budget_for(0.05, 0), 500);
    /// // At 2x the threshold the budget is fully unlocked, and 100
    /// // rolled-over bytes ride on top.
    /// assert_eq!(oc.budget_for(0.10, 100), 1100);
    /// // Without the scaling toggle the budget is flat.
    /// let flat = OnlineConfig { scale_budget_by_drift: false, ..oc };
    /// assert_eq!(flat.budget_for(0.05, 0), 1000);
    /// ```
    pub fn budget_for(&self, drift_now: f64, carry: u64) -> u64 {
        let base = if self.scale_budget_by_drift {
            // Linear in drift, capped at the configured budget; the full
            // budget unlocks at twice the firing threshold. `as`-casts
            // saturate, so `u64::MAX` budgets survive the round-trip.
            let scale = (drift_now / (2.0 * self.drift_threshold)).min(1.0);
            (self.migration_budget_bytes as f64 * scale) as u64
        } else {
            self.migration_budget_bytes
        };
        if self.budget_rollover {
            base.saturating_add(carry)
        } else {
            base
        }
    }
}

/// The re-plan knobs every adaptive serving surface shares — the
/// windowed online mode and the request-level serving loop read the same
/// six fields out of [`OnlineConfig`]. `ReplanPolicy` names that shared
/// subset so callers can build it once and stamp it into either config
/// path; the remaining [`OnlineConfig`] fields (`decay`,
/// `replica_memory_bytes`, `replica_policy`) are estimator/memory knobs,
/// not re-plan policy.
///
/// `From` impls convert both ways, so old construction paths keep
/// working:
///
/// ```
/// use exflow_core::{OnlineConfig, ReplanPolicy};
///
/// let policy = ReplanPolicy {
///     replan_every: 2,
///     drift_threshold: 0.1,
///     ..ReplanPolicy::default()
/// };
/// let oc = OnlineConfig::from(policy);
/// assert_eq!(oc.replan_every, 2);
/// assert_eq!(oc.decay, OnlineConfig::default().decay);
/// assert_eq!(ReplanPolicy::from(oc), policy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanPolicy {
    /// Serving windows between drift checks (see
    /// [`OnlineConfig::replan_every`]).
    pub replan_every: usize,
    /// Windowed divergence above which a re-plan fires (see
    /// [`OnlineConfig::drift_threshold`]).
    pub drift_threshold: f64,
    /// Byte budget of one re-plan (see
    /// [`OnlineConfig::migration_budget_bytes`]).
    pub migration_budget_bytes: u64,
    /// Roll unspent budget over to later re-plans (see
    /// [`OnlineConfig::budget_rollover`]).
    pub budget_rollover: bool,
    /// Scale each re-plan's budget by the measured drift (see
    /// [`OnlineConfig::scale_budget_by_drift`]).
    pub scale_budget_by_drift: bool,
    /// Solver-time budget of one re-plan in swap candidates considered
    /// (see [`OnlineConfig::replan_time_budget`]).
    pub replan_time_budget: u64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy::from(OnlineConfig::default())
    }
}

impl From<OnlineConfig> for ReplanPolicy {
    fn from(oc: OnlineConfig) -> Self {
        ReplanPolicy {
            replan_every: oc.replan_every,
            drift_threshold: oc.drift_threshold,
            migration_budget_bytes: oc.migration_budget_bytes,
            budget_rollover: oc.budget_rollover,
            scale_budget_by_drift: oc.scale_budget_by_drift,
            replan_time_budget: oc.replan_time_budget,
        }
    }
}

impl From<ReplanPolicy> for OnlineConfig {
    fn from(p: ReplanPolicy) -> Self {
        OnlineConfig {
            replan_every: p.replan_every,
            drift_threshold: p.drift_threshold,
            migration_budget_bytes: p.migration_budget_bytes,
            budget_rollover: p.budget_rollover,
            scale_budget_by_drift: p.scale_budget_by_drift,
            replan_time_budget: p.replan_time_budget,
            ..OnlineConfig::default()
        }
    }
}

impl OnlineConfig {
    /// The re-plan policy subset of this config.
    pub fn replan_policy(&self) -> ReplanPolicy {
        ReplanPolicy::from(*self)
    }

    /// This config with the re-plan policy fields replaced (estimator and
    /// replica-memory knobs untouched).
    pub fn with_replan_policy(mut self, p: ReplanPolicy) -> Self {
        self.replan_every = p.replan_every;
        self.drift_threshold = p.drift_threshold;
        self.migration_budget_bytes = p.migration_budget_bytes;
        self.budget_rollover = p.budget_rollover;
        self.scale_budget_by_drift = p.scale_budget_by_drift;
        self.replan_time_budget = p.replan_time_budget;
        self
    }
}

/// Full configuration of an engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Model shape (Table II row).
    pub model: ModelConfig,
    /// Cluster shape.
    pub cluster: ClusterSpec,
    /// Per-link communication costs.
    pub link_cost: CostModel,
    /// Compute-time model.
    pub compute: ComputeCostModel,
    /// Synthetic routing process standing in for the pre-trained gate.
    pub routing_spec: AffinityModelSpec,
    /// Serving-time token distribution.
    pub corpus: CorpusSpec,
    /// Concurrent requests per GPU (`g_i` in the paper's §IV-A).
    pub requests_per_gpu: usize,
    /// Prompt length at the start of generation.
    pub prompt_len: usize,
    /// Generation iterations to simulate.
    pub n_iterations: usize,
    /// Tokens traced offline to estimate affinity for placement (Fig. 13's
    /// X axis; thousands suffice).
    pub profile_tokens: usize,
    /// Local-search restarts for the staged placement solve.
    pub placement_restarts: usize,
    /// Worker threads for the placement solve. Per-engine (no global
    /// state); results are bit-identical at any width, so this is purely
    /// a build-latency knob. Defaults to sequential — engines opt in.
    pub parallelism: Parallelism,
    /// Storage backend for the profiled affinity objective. Evaluations
    /// are bit-identical across backends, so like `parallelism` this is
    /// purely a speed/memory knob; `Auto` picks CSR per gap once density
    /// drops below the sparse threshold (the large-expert regime).
    pub gap_backend: GapBackend,
    /// Online serving knobs (consulted only by
    /// [`InferenceEngine::run_online`]): re-plan cadence, drift threshold,
    /// migration byte budget, and estimator decay.
    pub online: OnlineConfig,
    /// Master seed.
    pub seed: u64,
}

/// Builder for [`InferenceEngine`] with evaluation-friendly defaults.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    cfg: EngineConfig,
}

impl EngineBuilder {
    fn new(model: ModelConfig, cluster: ClusterSpec) -> Self {
        let routing_spec = AffinityModelSpec::new(model.n_layers, model.n_experts);
        let corpus = CorpusSpec::pile_proxy(routing_spec.n_domains);
        EngineBuilder {
            cfg: EngineConfig {
                model,
                cluster,
                link_cost: CostModel::wilkes3(),
                compute: ComputeCostModel::a100(),
                routing_spec,
                corpus,
                requests_per_gpu: 8,
                prompt_len: 64,
                n_iterations: 4,
                profile_tokens: 2000,
                placement_restarts: 1,
                parallelism: Parallelism::single(),
                gap_backend: GapBackend::Auto,
                online: OnlineConfig::default(),
                seed: 7,
            },
        }
    }

    /// Override the link cost model.
    pub fn link_cost(mut self, link_cost: CostModel) -> Self {
        self.cfg.link_cost = link_cost;
        self
    }

    /// Override the compute cost model.
    pub fn compute(mut self, compute: ComputeCostModel) -> Self {
        self.cfg.compute = compute;
        self
    }

    /// Override the synthetic routing process.
    pub fn routing_spec(mut self, spec: AffinityModelSpec) -> Self {
        assert_eq!(spec.n_layers, self.cfg.model.n_layers);
        assert_eq!(spec.n_experts, self.cfg.model.n_experts);
        self.cfg.routing_spec = spec;
        self.cfg.corpus = CorpusSpec::pile_proxy(self.cfg.routing_spec.n_domains);
        self
    }

    /// Override the serving corpus.
    pub fn corpus(mut self, corpus: CorpusSpec) -> Self {
        self.cfg.corpus = corpus;
        self
    }

    /// Concurrent requests per GPU.
    pub fn requests_per_gpu(mut self, g: usize) -> Self {
        assert!(g >= 1);
        self.cfg.requests_per_gpu = g;
        self
    }

    /// Prompt length.
    pub fn prompt_len(mut self, l: usize) -> Self {
        self.cfg.prompt_len = l;
        self
    }

    /// Number of generation iterations.
    pub fn n_iterations(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.cfg.n_iterations = n;
        self
    }

    /// Tokens used for offline affinity profiling.
    pub fn profile_tokens(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.cfg.profile_tokens = n;
        self
    }

    /// Local-search restarts for placement.
    pub fn placement_restarts(mut self, r: usize) -> Self {
        self.cfg.placement_restarts = r;
        self
    }

    /// Worker threads for the placement solve (the solve is bit-identical
    /// at any width, so this only changes build latency).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.cfg.parallelism = par;
        self
    }

    /// Storage backend for the affinity objective (bit-identical results
    /// on either; `Auto` switches to CSR when the profiled matrices are
    /// sparse enough).
    pub fn gap_backend(mut self, backend: GapBackend) -> Self {
        self.cfg.gap_backend = backend;
        self
    }

    /// Online serving knobs (see [`OnlineConfig`]).
    pub fn online(mut self, online: OnlineConfig) -> Self {
        online.validate();
        self.cfg.online = online;
        self
    }

    /// Override just the shared re-plan policy subset of the online
    /// knobs (see [`ReplanPolicy`]); estimator decay and replica memory
    /// keep whatever they were.
    pub fn replan_policy(mut self, policy: ReplanPolicy) -> Self {
        self.cfg.online = self.cfg.online.with_replan_policy(policy);
        self.cfg.online.validate();
        self
    }

    /// Per-GPU replica memory budget for the online mode (see
    /// [`OnlineConfig::replica_memory_bytes`]); a convenience over
    /// [`EngineBuilder::online`] for turning on replication-aware
    /// re-planning alone.
    pub fn replication(mut self, replica_memory_bytes: u64) -> Self {
        self.cfg.online.replica_memory_bytes = replica_memory_bytes;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Profile affinity, solve placements, and produce the engine.
    pub fn build(self) -> InferenceEngine {
        InferenceEngine::from_config(self.cfg)
    }
}

/// The engine: owns the routing process, the profiled affinity objective,
/// and one placement per mode; [`InferenceEngine::run`] executes a full
/// multi-iteration generation benchmark on the simulated cluster.
pub struct InferenceEngine {
    cfg: EngineConfig,
    routing: RoutingModel,
    objective: Objective,
    profile_trace: RoutingTrace,
    round_robin: Placement,
    affinity_gpu: Placement,
    affinity_node: Placement,
}

impl InferenceEngine {
    /// Start building an engine for `model` on `cluster`.
    pub fn builder(model: ModelConfig, cluster: ClusterSpec) -> EngineBuilder {
        EngineBuilder::new(model, cluster)
    }

    /// Build from a complete config.
    pub fn from_config(cfg: EngineConfig) -> Self {
        let world = cfg.cluster.world_size();
        assert!(
            cfg.model.n_experts.is_multiple_of(world),
            "experts ({}) must divide across {} GPUs",
            cfg.model.n_experts,
            world
        );
        assert!(
            cfg.model.gate.k() <= cfg.model.n_experts,
            "top-k gating needs at least k experts"
        );
        let routing = cfg.routing_spec.build();

        // Offline profiling pass: trace tokens, estimate affinity, solve
        // the staged placement (paper §V-A: profile on the training split,
        // serve on the evaluation split — the serving seed differs).
        let profile_batch = TokenBatch::sample(
            &routing,
            &cfg.corpus,
            cfg.profile_tokens,
            1,
            cfg.seed ^ 0x0ff1_1e5e,
        );
        let profile_trace = RoutingTrace::from_batch(&profile_batch, cfg.model.n_experts);
        // Sparse-native ingestion: trace -> CSR estimates without ever
        // materializing dense E x E tables (bit-identical to the dense
        // estimator); `gap_backend` then picks the evaluation layout.
        let estimates = SparseAffinity::consecutive(&profile_trace);
        let objective = Objective::from_sparse_affinities_with(&estimates, cfg.gap_backend);

        let staged = solve_staged_with(
            &objective,
            &cfg.cluster,
            cfg.placement_restarts,
            cfg.seed,
            cfg.parallelism,
        );
        let round_robin = Placement::round_robin(cfg.model.n_layers, cfg.model.n_experts, world);

        InferenceEngine {
            cfg,
            routing,
            objective,
            profile_trace,
            round_robin,
            affinity_gpu: staged.gpu_level,
            affinity_node: staged.node_level,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The profiled affinity objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The offline profiling trace.
    pub fn profile_trace(&self) -> &RoutingTrace {
        &self.profile_trace
    }

    /// The routing model used for both profiling and serving.
    pub fn routing(&self) -> &RoutingModel {
        &self.routing
    }

    /// The node-level (stage-1) placement of the affinity solve.
    pub fn node_placement(&self) -> &Placement {
        &self.affinity_node
    }

    /// The placement a mode runs with.
    pub fn placement_for(&self, mode: ParallelismMode) -> &Placement {
        if mode.uses_affinity() {
            &self.affinity_gpu
        } else {
            &self.round_robin
        }
    }

    /// Run a full generation benchmark in `mode` with its default
    /// placement.
    #[deprecated(note = "use `run_scenario(&Scenario::offline(mode))`")]
    pub fn run(&self, mode: ParallelismMode) -> InferenceReport {
        self.run_offline_impl(mode)
    }

    /// One offline benchmark in `mode` (the `run_scenario` offline path).
    pub(crate) fn run_offline_impl(&self, mode: ParallelismMode) -> InferenceReport {
        self.run_with_placement(mode, self.placement_for(mode))
    }

    /// Run with an explicit placement (used by the sampling study, which
    /// derives placements from truncated profiling traces). This is the
    /// explicit-placement escape hatch under [`crate::Scenario`]'s front door
    /// (`crate::scenario::Scenario` covers the engine-chosen placements
    /// only), so it is *not* deprecated.
    pub fn run_with_placement(
        &self,
        mode: ParallelismMode,
        placement: &Placement,
    ) -> InferenceReport {
        let batches = self.serving_batches(&self.routing, 0);
        let no_replicas = vec![Vec::new(); self.cfg.model.n_layers];
        self.run_with_batches(mode, placement, &no_replicas, &batches, 0, None)
    }

    /// Run with an explicit [`ReplicationPlan`]: dispatch serves a token's
    /// expert from a local (or same-node) replica whenever the plan holds
    /// one there (see `OnlineConfig::replica_memory_bytes` for where such
    /// plans come from in the online mode). Context-coherent top-2 keeps
    /// its secondary-merge meeting point computable from the route alone
    /// by always running the *primary* copy on the owner GPU; secondaries
    /// are free to be served from replicas.
    #[deprecated(note = "use `run_scenario(&Scenario::offline(mode).with_replication(plan))`")]
    pub fn run_with_replication(
        &self,
        mode: ParallelismMode,
        plan: &ReplicationPlan,
    ) -> InferenceReport {
        self.run_with_replication_impl(mode, plan)
    }

    /// One offline benchmark under an explicit replication plan (the
    /// `run_scenario` offline-with-replication path).
    pub(crate) fn run_with_replication_impl(
        &self,
        mode: ParallelismMode,
        plan: &ReplicationPlan,
    ) -> InferenceReport {
        let batches = self.serving_batches(&self.routing, 0);
        self.run_with_batches(mode, &plan.base, &plan.replicas, &batches, 0, None)
    }

    /// Serving batches for one window: fresh routes per generation
    /// iteration, from seed streams disjoint from the profiling seed (and
    /// from every other window's streams).
    fn serving_batches(&self, routing: &RoutingModel, window: usize) -> Vec<TokenBatch> {
        let cfg = &self.cfg;
        let w = cfg.cluster.world_size();
        (0..cfg.n_iterations)
            .map(|iter| {
                let global_iter = (window * cfg.n_iterations + iter) as u64;
                TokenBatch::sample(
                    routing,
                    &cfg.corpus,
                    w * cfg.requests_per_gpu,
                    cfg.model.gate.k(),
                    cfg.seed
                        .wrapping_mul(0x9e37_79b9)
                        .wrapping_add(global_iter + 1),
                )
            })
            .collect()
    }

    /// Execute one serving run over explicit batches. `ctx_offset` shifts
    /// the per-iteration context length (tokens generated in earlier
    /// windows of an online run are part of every later context). Batches
    /// may be any size: tokens spread round-robin over the ranks, so the
    /// request-level serving loop (`crate::serving`) can feed it
    /// continuous-batching pools of whatever occupancy the queue yields.
    ///
    /// `live` masks out failed GPUs: dead ranks hold no tokens or
    /// experts but still join every collective (with empty payloads), so
    /// the SPMD clocks stay synchronized across the provisioned fleet.
    /// `None` — and equivalently an all-`true` mask — is the healthy
    /// fleet: token homing and context-setup accounting then reduce to
    /// exactly the unmasked arithmetic, so fault-free runs are
    /// bit-identical to the pre-fault-layer engine.
    pub(crate) fn run_with_batches(
        &self,
        mode: ParallelismMode,
        placement: &Placement,
        replicated: &[LayerReplicas],
        batches: &[TokenBatch],
        ctx_offset: usize,
        live: Option<&[bool]>,
    ) -> InferenceReport {
        let cfg = &self.cfg;
        let w = cfg.cluster.world_size();
        assert_eq!(placement.n_units(), w, "placement must cover every GPU");
        assert_eq!(placement.n_layers(), cfg.model.n_layers);
        assert_eq!(replicated.len(), cfg.model.n_layers);
        if let Some(mask) = live {
            assert_eq!(mask.len(), w, "live mask must cover every GPU");
            assert!(mask.iter().any(|&x| x), "at least one GPU must be live");
        }
        let live_ranks: Vec<usize> = match live {
            Some(mask) => mask
                .iter()
                .enumerate()
                .filter_map(|(r, &up)| up.then_some(r))
                .collect(),
            None => (0..w).collect(),
        };

        let world = CommWorld::new(cfg.cluster, cfg.link_cost);
        let rank_results = world.run(|comm| {
            self.rank_loop(
                comm,
                mode,
                placement,
                replicated,
                batches,
                ctx_offset,
                &live_ranks,
            )
        });

        let total_time = rank_results
            .iter()
            .map(|r| r.final_clock)
            .fold(0.0f64, f64::max);
        let mut breakdown = OpBreakdown::default();
        let mut dispatch = DispatchStats::default();
        for r in &rank_results {
            breakdown.merge(&r.breakdown);
            dispatch.merge(&r.dispatch);
        }
        let breakdown = breakdown.scaled(1.0 / w as f64);

        InferenceReport {
            mode,
            total_time,
            breakdown,
            tokens_processed: batches.iter().map(|b| b.len() as u64).sum(),
            dispatch,
            alltoall_bytes: world.stats().totals(OpKind::Alltoall).sent,
            allgather_bytes: world.stats().totals(OpKind::AllGather).sent,
        }
    }

    /// Online serving: execute one window per entry of `drift`'s schedule,
    /// maintaining a streaming affinity estimate of the live traffic and
    /// incrementally re-placing experts when the estimate drifts from the
    /// one the current placement was solved against.
    ///
    /// Per window: serve `EngineConfig::n_iterations` generation
    /// iterations from the window's routing model, fold the realized
    /// routing paths into the decayed [`StreamingAffinity`] estimate, and
    /// compute the drift signal. Every `OnlineConfig::replan_every`
    /// windows, if the drift exceeds `OnlineConfig::drift_threshold` (and
    /// `mode` uses affinity placement at all), a budgeted incremental
    /// re-placement runs from the incumbent and the resulting
    /// [`MigrationPlan`] is executed over the simulated collectives
    /// before the next window starts.
    ///
    /// The re-plan's migration byte budget starts from
    /// `OnlineConfig::migration_budget_bytes`, optionally scaled by the
    /// drift magnitude and topped up with rolled-over budget from earlier
    /// re-plans (see the `scale_budget_by_drift` / `budget_rollover`
    /// toggles). With `OnlineConfig::replica_memory_bytes > 0` the
    /// re-plan is **replication-aware**: it may also add or drop expert
    /// replicas onto `OnlineConfig::replica_policy`-chosen GPU subsets
    /// (`solve_budgeted_replicated` races subset selection against full
    /// fan-out and owner-move descent under the joint budget), replica
    /// fan-out traffic to the selected subset is priced into the same
    /// migration budget, and dispatch serves replicated experts from the
    /// token's own GPU — or a same-node holder — whenever the subset
    /// covers one. Context-coherent top-2 joins in: primaries always run
    /// on the owner (the route-derivable secondary-merge meeting point),
    /// secondaries serve from replicas. The
    /// whole run is a pure function of (config, drift schedule):
    /// bit-identical at any parallelism width, and cadence-invariant
    /// whenever no re-plan fires.
    #[deprecated(note = "use `run_scenario(&Scenario::offline(mode).with_drift(drift))`")]
    pub fn run_online(&self, mode: ParallelismMode, drift: &DriftSchedule) -> OnlineReport {
        self.run_online_impl(mode, drift)
    }

    /// One windowed online run (the `run_scenario` drift path); see the
    /// deprecated [`InferenceEngine::run_online`] for the full contract.
    pub(crate) fn run_online_impl(
        &self,
        mode: ParallelismMode,
        drift: &DriftSchedule,
    ) -> OnlineReport {
        let cfg = &self.cfg;
        let oc = cfg.online;
        oc.validate();
        let e = cfg.model.n_experts;
        let shape = drift.model_at(0);
        assert_eq!(shape.n_layers(), cfg.model.n_layers, "drift layer mismatch");
        assert_eq!(shape.n_experts(), e, "drift expert mismatch");
        assert_eq!(
            shape.n_domains(),
            cfg.corpus.domain_weights.len(),
            "drift domain mismatch"
        );

        // The incumbent placement was solved against the offline profile
        // estimate; seed the streaming estimator with the same trace so
        // the first reference snapshot is exactly what the incumbent knows.
        let mut streaming = StreamingAffinity::new(cfg.model.n_layers, e, oc.decay);
        streaming.observe(&self.profile_trace);
        let mut reference = streaming.snapshot();
        // The re-plan objective is built once from the seed snapshot and
        // then kept current by per-window delta application — never
        // rebuilt — with the swap-gain cache riding along across re-plans.
        let mut replan_state = self.replan_state(&reference);
        let mut placement = self.placement_for(mode).clone();
        let mut replicated: Vec<LayerReplicas> = vec![Vec::new(); cfg.model.n_layers];
        let mut carry = 0u64;

        let mut windows = Vec::with_capacity(drift.n_windows());
        let mut drifts = Vec::with_capacity(drift.n_windows());
        let mut replans = Vec::new();
        let mut migrations = MigrationStats::default();

        for window in 0..drift.n_windows() {
            let batches = self.serving_batches(drift.model_at(window), window);
            let report = self.run_with_batches(
                mode,
                &placement,
                &replicated,
                &batches,
                window * cfg.n_iterations,
                None,
            );

            // Online profiling is free: the engine already knows every
            // serving token's expert path. Folding the window in yields
            // the CSR delta of exactly the rows it touched; splicing that
            // into the incumbent objective is bit-identical to rebuilding
            // from a fresh snapshot, at O(changed rows) instead of O(E^2).
            let paths: Vec<Vec<u16>> = batches.iter().flat_map(TokenBatch::top1_paths).collect();
            let delta = streaming.observe_delta(&RoutingTrace::new(paths, e));
            replan_state.absorb(&delta);
            let drift_now = streaming.divergence(&reference);
            windows.push(report);
            drifts.push(drift_now);

            // A re-plan after the final window would charge migration
            // time and bytes that no subsequent traffic benefits from.
            let due = (window + 1) % oc.replan_every == 0 && window + 1 < drift.n_windows();
            if due && drift_now > oc.drift_threshold && mode.uses_affinity() {
                if let Some(exec) = self.replan_step(
                    mode,
                    drift_now,
                    &mut replan_state,
                    &mut placement,
                    &mut replicated,
                    &mut carry,
                ) {
                    migrations.absorb(&exec);
                    replans.push(exec.event(window, drift_now));
                }
                // Whether or not anything moved, the live estimate is now
                // what the incumbent placement has been (re-)optimized
                // for; re-anchor the drift reference to it.
                reference = streaming.snapshot();
            }
        }

        let final_extra_copies = if replicated.iter().all(Vec::is_empty) {
            0
        } else {
            ReplicationPlan {
                base: placement,
                replicas: replicated,
            }
            .extra_copies_per_gpu() as u64
        };

        OnlineReport {
            mode,
            windows,
            drift: drifts,
            replans,
            migrations,
            final_extra_copies,
        }
    }

    /// Seed the incremental re-plan state both adaptive serving surfaces
    /// maintain: an objective built once from the estimator's starting
    /// snapshot — thereafter kept current by
    /// [`ReplanState::absorb`]-ing each window's
    /// [`SnapshotDelta`] instead of rebuilding from scratch — plus the
    /// persistent swap-gain cache the metered solvers reuse across
    /// re-plans.
    pub(crate) fn replan_state(&self, reference: &AffinitySnapshot) -> ReplanState {
        let objective = Objective::from_snapshot_with(reference, self.cfg.gap_backend);
        let cache = SwapGainCache::for_objective(&objective);
        ReplanState { objective, cache }
    }

    /// One budgeted re-plan against the live affinity estimate, shared by
    /// the windowed online loop and the request-level serving loop: take
    /// the incrementally maintained objective from `state` (bit-identical
    /// to a cold rebuild from the live snapshot), size the byte budget
    /// from the drift magnitude and rollover carry, race replica-aware vs
    /// owner-move solving under it — each solve metered by
    /// `OnlineConfig::replan_time_budget` and served from the persistent
    /// swap-gain cache — commit the winning placement into
    /// `placement`/`replicated`, and execute the migration plan over the
    /// simulated collectives. Returns `None` when the plan is empty
    /// (nothing moved, no time charged); the rollover carry updates
    /// either way.
    pub(crate) fn replan_step(
        &self,
        _mode: ParallelismMode,
        drift_now: f64,
        state: &mut ReplanState,
        placement: &mut Placement,
        replicated: &mut Vec<LayerReplicas>,
        carry: &mut u64,
    ) -> Option<ReplanExec> {
        let cfg = &self.cfg;
        let oc = cfg.online;
        let bytes_per_expert = (cfg.model.expert_params() * 2).max(1);
        let ReplanState { objective, cache } = state;
        let budget_now = oc.budget_for(drift_now, *carry);
        let scan_budget = oc.replan_time_budget;
        let (plan, cost) = if oc.replica_memory_bytes > 0 {
            let incumbent = ReplicationPlan {
                base: placement.clone(),
                replicas: replicated.clone(),
            };
            // Resolve the config-level fan-out knob against this engine's
            // cluster shape.
            let policy = match oc.replica_policy {
                ReplicaPlacement::Everywhere => ReplicaPolicy::Everywhere,
                ReplicaPlacement::OnePerNode => ReplicaPolicy::OnePerNode(cfg.cluster),
            };
            let (next, cost) = solve_budgeted_replicated_metered(
                objective,
                &incumbent,
                bytes_per_expert,
                &ReplicationBudget {
                    replica_memory_bytes: oc.replica_memory_bytes,
                    migration_budget_bytes: budget_now,
                },
                &policy,
                scan_budget,
                Some(cache),
            );
            let plan = MigrationPlan::between_replicated(&incumbent, &next, bytes_per_expert);
            *placement = next.base;
            *replicated = next.replicas;
            (plan, cost)
        } else {
            let max_moves = budget_now / bytes_per_expert;
            let (next, cost) =
                solve_budgeted_metered(objective, placement, max_moves, scan_budget, Some(cache));
            let plan = MigrationPlan::between(placement, &next, bytes_per_expert);
            *placement = next;
            (plan, cost)
        };
        debug_assert!(plan.total_bytes() <= budget_now);
        if oc.budget_rollover {
            *carry = budget_now.saturating_sub(plan.total_bytes());
        }
        if plan.is_empty() {
            return None;
        }
        let (time, bytes) = self.execute_migrations(&plan);
        Some(ReplanExec {
            experts_moved: plan.n_relocations() as u64,
            replicas_added: plan.n_replica_adds() as u64,
            replicas_dropped: plan.n_replica_drops() as u64,
            bytes_moved: plan.total_bytes(),
            budget_bytes: budget_now,
            migration_time: time,
            bytes,
            cost,
        })
    }

    /// Execute a migration plan over the simulated collectives: each rank
    /// serializes its outgoing expert transfers (and absorbs its incoming
    /// ones) on the α–β cost model at full link bandwidth, then a barrier
    /// holds the fleet until the slowest endpoint finishes — the same
    /// busiest-endpoint bound `CollectiveCostModel::exchange_time` prices.
    /// Weight payloads are charged analytically (precedent: the context
    /// AllGather of prompt tokens), since the simulation never inspects
    /// their contents. Returns the completion time and bytes by class.
    pub(crate) fn execute_migrations(&self, plan: &MigrationPlan) -> (f64, BytesByClass) {
        let cfg = &self.cfg;
        let matrix = plan.send_matrix(cfg.cluster.world_size());
        let world = CommWorld::new(cfg.cluster, cfg.link_cost);
        let finish = world.run(|comm| {
            let me = comm.rank().0;
            let start = comm.now();
            let mut sent = BytesByClass::default();
            let mut send_time = 0.0f64;
            for (dst, &bytes) in matrix[me].iter().enumerate() {
                if bytes > 0 {
                    let class = cfg.cluster.link_class(Rank(me), Rank(dst));
                    send_time += cfg.link_cost.transfer_time(class, bytes);
                    sent.add(class, bytes);
                }
            }
            let mut recv_time = 0.0f64;
            for (src, row) in matrix.iter().enumerate() {
                if row[me] > 0 {
                    let class = cfg.cluster.link_class(Rank(src), Rank(me));
                    recv_time += cfg.link_cost.transfer_time(class, row[me]);
                }
            }
            comm.advance(send_time.max(recv_time));
            comm.barrier();
            comm.record(CommRecord {
                op: OpKind::Migration,
                rank: me,
                start,
                end: comm.now(),
                sent,
            });
            comm.now()
        });
        let time = finish.into_iter().fold(0.0f64, f64::max);
        (time, world.stats().totals(OpKind::Migration).sent)
    }

    /// The per-rank SPMD body. `live_ranks` lists the live GPUs
    /// ascending; dead ranks own nothing and carry nothing but still
    /// enter every collective so the virtual clocks agree. With every
    /// rank live this computes bit-identically to the unmasked loop:
    /// `live_ranks[id % live_ranks.len()]` is then exactly `id % w`.
    // Mirrors the SPMD rank-body signature; bundling into a struct would
    // hide which inputs every rank must agree on.
    #[allow(clippy::too_many_arguments)]
    fn rank_loop(
        &self,
        comm: &mut RankComm,
        mode: ParallelismMode,
        placement: &Placement,
        replicated: &[LayerReplicas],
        batches: &[TokenBatch],
        ctx_offset: usize,
        live_ranks: &[usize],
    ) -> RankResult {
        let cfg = &self.cfg;
        let me = comm.rank().0;
        let w = comm.world_size();
        let alive = live_ranks.contains(&me);
        let n_live = live_ranks.len();
        let sim_dim = cfg.model.sim_dim;
        let frame = frame_size(cfg.model.token_bytes(), sim_dim);
        let my_node = cfg.cluster.node_of(Rank(me));
        let k = cfg.model.gate.k();

        // Load this rank's experts (deterministic per (layer, expert), so
        // any placement sees identical weights), including replicas whose
        // subset covers this rank. Dead ranks hold nothing — an evacuated
        // placement never routes to them anyway. Ordered map per the
        // determinism contract (detlint D001).
        let mut experts: BTreeMap<(usize, usize), Expert> = BTreeMap::new();
        if alive {
            for (layer, layer_replicas) in replicated.iter().enumerate() {
                let mut ids = placement.experts_on(layer, me);
                for (x, units) in layer_replicas {
                    if units.contains(&me) && !ids.contains(x) {
                        ids.push(*x);
                    }
                }
                for e in ids {
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed ^ (layer as u64) << 32 ^ (e as u64) << 8 ^ 0xe4e4,
                    );
                    experts.insert((layer, e), Expert::random(sim_dim, sim_dim * 4, &mut rng));
                }
            }
        }

        let mut breakdown = OpBreakdown::default();
        let mut dispatch = DispatchStats::default();

        // Context coherence setup: one AllGather of all prompt contexts.
        // This happens once before generation and its payload (every
        // prompt token on every GPU) would dominate the simulation's
        // memory traffic without affecting any per-layer behaviour, so it
        // is charged analytically: every rank advances by the same ring
        // AllGather time the cost model predicts.
        if mode.context_coherent() {
            // Tokens are resident round-robin by id over the *live*
            // ranks, so the live rank at position `j` holds `ceil`-or-
            // `floor` of `n / n_live` of them and dead ranks contribute
            // nothing; every rank computes the same contribution vector
            // and hence the same analytic time.
            let n_tokens = batches.first().map_or(0, TokenBatch::len);
            let contribs: Vec<u64> = (0..w)
                .map(|r| {
                    let mine = match live_ranks.iter().position(|&lr| lr == r) {
                        Some(j) => n_tokens / n_live + usize::from(j < n_tokens % n_live),
                        None => 0,
                    };
                    (mine * cfg.prompt_len * frame) as u64
                })
                .collect();
            let analytic = exflow_topology::CollectiveCostModel::new(cfg.cluster, cfg.link_cost);
            let t = analytic.allgatherv_time(&contribs);
            comm.advance(t);
            breakdown.allgather += t;
        }

        for (iter, batch) in batches.iter().enumerate() {
            let ctx_len = cfg.prompt_len + ctx_offset + iter;

            // This rank's requests each contribute one in-flight token;
            // tokens spread round-robin over the live ranks, whatever the
            // batch size (dead ranks home nothing).
            let mut resident: Vec<Token> = (0..batch.len())
                .filter(|id| live_ranks[id % n_live] == me)
                .map(|id| {
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed ^ (iter as u64) << 40 ^ (id as u64) << 4 ^ 0x70_6b,
                    );
                    Token {
                        id: id as u32,
                        home: me as u32,
                        domain: batch.domains[id] as u32,
                        slot: 0,
                        emb: (0..sim_dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
                    }
                })
                .collect();

            for (layer, layer_replicas) in replicated.iter().enumerate() {
                // Attention: in-place on whatever GPU the token occupies
                // (context-coherent) or on the home GPU (vanilla — tokens
                // are home here because the previous layer combined).
                let t_att = cfg
                    .compute
                    .attention_time(&cfg.model, resident.len(), ctx_len);
                comm.advance(t_att);
                breakdown.attention += t_att;

                // Gating.
                let t_gate = cfg.compute.gating_time(&cfg.model, resident.len());
                comm.advance(t_gate);
                breakdown.gating += t_gate;

                // Dispatch Alltoall: route every resident token (one copy
                // per gated expert) to the GPU holding that expert.
                let mut outgoing: Vec<Vec<Token>> = (0..w).map(|_| Vec::new()).collect();
                for tok in resident.drain(..) {
                    for slot in 0..k {
                        let expert = batch.routes[tok.id as usize][layer][slot] as usize;
                        let owner = placement.unit_of(layer, expert);
                        // Subsets are sorted by expert, so holder lookup
                        // is a binary search.
                        let units: &[usize] = layer_replicas
                            .binary_search_by_key(&expert, |r| r.0)
                            .map(|i| layer_replicas[i].1.as_slice())
                            .unwrap_or(&[]);
                        // Meeting-point rule: in context-coherent top-2
                        // the *primary* always runs on the owner GPU, so
                        // every rank can derive the secondary-merge
                        // destination from the route alone; all other
                        // dispatch serves from the nearest live holder —
                        // this GPU if it holds a copy, else a same-node
                        // replica when the owner is off-node, else the
                        // owner.
                        let dst = if mode.context_coherent() && k > 1 && slot == 0 {
                            owner
                        } else if me == owner || units.contains(&me) {
                            me
                        } else if cfg.cluster.node_of(Rank(owner)) != my_node {
                            units
                                .iter()
                                .copied()
                                .filter(|&u| {
                                    cfg.cluster.node_of(Rank(u)) == my_node
                                        && live_ranks.binary_search(&u).is_ok()
                                })
                                .min()
                                .unwrap_or(owner)
                        } else {
                            owner
                        };
                        dispatch.total += 1;
                        if dst == me {
                            dispatch.same_gpu += 1;
                            dispatch.same_node += 1;
                        } else if cfg.cluster.node_of(Rank(dst)) == my_node {
                            dispatch.same_node += 1;
                        }
                        let mut copy = tok.clone();
                        copy.slot = slot as u32;
                        outgoing[dst].push(copy);
                    }
                }
                let bufs: Vec<Vec<u8>> = outgoing.iter().map(|ts| encode(ts, frame)).collect();
                // The Alltoall is a synchronization point: straggler wait
                // at entry is attributed to `imbalance`, the collective's
                // own cost to `alltoall`.
                let t0 = comm.now();
                comm.barrier();
                breakdown.imbalance += comm.now() - t0;
                let t1 = comm.now();
                let received_bufs = comm.all_to_all_v(bufs);
                breakdown.alltoall += comm.now() - t1;

                let mut received: Vec<Token> = received_bufs
                    .iter()
                    .flat_map(|b| decode(b, frame))
                    .collect();

                // Expert FFN: group by expert, run the real reduced-dim
                // matmuls, advance the clock by the true-dim cost. The
                // per-token outputs are order-independent, but an ordered
                // map keeps the group walk reproducible by construction
                // (detlint D001).
                let mut by_expert: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                for (idx, tok) in received.iter().enumerate() {
                    let expert = batch.routes[tok.id as usize][layer][tok.slot as usize] as usize;
                    by_expert.entry(expert).or_default().push(idx);
                }
                for (expert_id, idxs) in &by_expert {
                    let expert = experts
                        .get(&(layer, *expert_id))
                        .expect("token routed to an expert this rank does not hold");
                    let mut flat = Vec::with_capacity(idxs.len() * sim_dim);
                    for &i in idxs {
                        flat.extend_from_slice(&received[i].emb);
                    }
                    let x = Matrix::from_vec(idxs.len(), sim_dim, flat);
                    let y = expert.forward(&x);
                    for (row, &i) in idxs.iter().enumerate() {
                        received[i].emb.copy_from_slice(y.row(row));
                    }
                }
                let t_ffn = cfg
                    .compute
                    .expert_time(&cfg.model, received.len(), by_expert.len(), 1);
                comm.advance(t_ffn);
                breakdown.expert_ffn += t_ffn;

                if mode.context_coherent() {
                    if k == 1 {
                        // Tokens stay where their experts are.
                        resident = received;
                    } else {
                        // Top-2: the primary copy's GPU is the meeting
                        // point. Secondary outputs travel there in a second
                        // (sparse) Alltoall and the copies are merged.
                        let mut to_primary: Vec<Vec<Token>> = (0..w).map(|_| Vec::new()).collect();
                        let mut primaries: Vec<Token> = Vec::new();
                        for tok in received.drain(..) {
                            if tok.slot == 0 {
                                primaries.push(tok);
                            } else {
                                let pe = batch.routes[tok.id as usize][layer][0] as usize;
                                let dst = placement.unit_of(layer, pe);
                                to_primary[dst].push(tok);
                            }
                        }
                        let bufs: Vec<Vec<u8>> =
                            to_primary.iter().map(|ts| encode(ts, frame)).collect();
                        let t0 = comm.now();
                        comm.barrier();
                        breakdown.imbalance += comm.now() - t0;
                        let t1 = comm.now();
                        let returned = comm.all_to_all_v(bufs);
                        breakdown.alltoall += comm.now() - t1;
                        let secondaries: Vec<Token> =
                            returned.iter().flat_map(|b| decode(b, frame)).collect();
                        resident = merge_topk(primaries, secondaries, sim_dim);
                    }
                } else {
                    // Combine Alltoall: every copy returns to its home GPU
                    // so the next layer's attention can see its context;
                    // top-2 copies are merged there.
                    let mut back: Vec<Vec<Token>> = (0..w).map(|_| Vec::new()).collect();
                    for tok in received.drain(..) {
                        let home = tok.home as usize;
                        back[home].push(tok);
                    }
                    let bufs: Vec<Vec<u8>> = back.iter().map(|ts| encode(ts, frame)).collect();
                    let t0 = comm.now();
                    comm.barrier();
                    breakdown.imbalance += comm.now() - t0;
                    let t1 = comm.now();
                    let returned = comm.all_to_all_v(bufs);
                    breakdown.alltoall += comm.now() - t1;
                    let all: Vec<Token> = returned.iter().flat_map(|b| decode(b, frame)).collect();
                    resident = if k == 1 {
                        all
                    } else {
                        let (primaries, secondaries): (Vec<Token>, Vec<Token>) =
                            all.into_iter().partition(|t| t.slot == 0);
                        merge_topk(primaries, secondaries, sim_dim)
                    };
                }
            }

            // Context coherence upkeep: broadcast this iteration's newly
            // generated tokens so every GPU's context stays complete.
            if mode.context_coherent() {
                let t0 = comm.now();
                comm.barrier();
                breakdown.imbalance += comm.now() - t0;
                let t1 = comm.now();
                let contrib = encode(&resident, frame);
                let _ = comm.all_gather_v(contrib);
                breakdown.allgather += comm.now() - t1;
            }

            comm.barrier();
        }

        RankResult {
            breakdown,
            dispatch,
            final_clock: comm.now(),
        }
    }
}

struct RankResult {
    breakdown: OpBreakdown,
    dispatch: DispatchStats,
    final_clock: f64,
}

/// The incremental solver state an adaptive serving loop carries across
/// windows: the affinity objective — built once from the estimator's seed
/// snapshot and kept current by CSR delta splices — and the persistent
/// swap-gain cache the metered re-plan solvers draw on. Both surfaces
/// (`run_online` and the request-level serving loop) thread one of these
/// through every `replan_step` instead of rebuilding the `O(L x E^2)`
/// objective per re-plan.
pub(crate) struct ReplanState {
    objective: Objective,
    cache: SwapGainCache,
}

impl ReplanState {
    /// Fold one estimator window delta into the maintained objective.
    /// Bit-identical to `Objective::from_snapshot_with` on the
    /// post-window snapshot, at the cost of only the touched rows.
    pub(crate) fn absorb(&mut self, delta: &SnapshotDelta) {
        self.objective.apply_snapshot_delta(delta);
    }
}

/// Everything one executed re-plan changed, for the caller's accounting
/// (shared by `run_online` and the serving front-end's event loop).
pub(crate) struct ReplanExec {
    pub(crate) experts_moved: u64,
    pub(crate) replicas_added: u64,
    pub(crate) replicas_dropped: u64,
    pub(crate) bytes_moved: u64,
    pub(crate) budget_bytes: u64,
    pub(crate) migration_time: f64,
    pub(crate) bytes: BytesByClass,
    pub(crate) cost: ReplanCost,
}

impl ReplanExec {
    /// The [`ReplanEvent`] this execution records at `window`.
    pub(crate) fn event(&self, window: usize, drift: f64) -> ReplanEvent {
        ReplanEvent {
            window,
            drift,
            experts_moved: self.experts_moved,
            replicas_added: self.replicas_added,
            replicas_dropped: self.replicas_dropped,
            bytes_moved: self.bytes_moved,
            budget_bytes: self.budget_bytes,
            migration_time: self.migration_time,
            bytes_by_class: self.bytes,
            solver_cost: self.cost,
        }
    }
}

impl MigrationStats {
    /// Fold one executed re-plan into the running totals.
    pub(crate) fn absorb(&mut self, exec: &ReplanExec) {
        self.replans += 1;
        self.experts_moved += exec.experts_moved;
        self.replicas_added += exec.replicas_added;
        self.replicas_dropped += exec.replicas_dropped;
        self.bytes.merge(&exec.bytes);
        self.time += exec.migration_time;
    }
}

/// Gate mixing weights for top-2 (primary, secondary). The paper's models
/// use per-token softmax gate scores; a fixed representative split keeps
/// the simulation deterministic without changing any communication.
const TOP2_WEIGHTS: (f32, f32) = (0.7, 0.3);

/// Merge top-2 copies: each primary output is blended with its token's
/// secondary output (when present on this rank after the return Alltoall).
fn merge_topk(primaries: Vec<Token>, secondaries: Vec<Token>, _sim_dim: usize) -> Vec<Token> {
    let mut sec: BTreeMap<u32, Vec<f32>> = secondaries.into_iter().map(|t| (t.id, t.emb)).collect();
    primaries
        .into_iter()
        .map(|mut t| {
            if let Some(s) = sec.remove(&t.id) {
                for (a, b) in t.emb.iter_mut().zip(s.iter()) {
                    *a = TOP2_WEIGHTS.0 * *a + TOP2_WEIGHTS.1 * b;
                }
            }
            t.slot = 0;
            t
        })
        .collect()
}

#[cfg(test)]
// These unit tests pin the legacy `run`/`run_online`/`run_with_replication`
// entry points (now thin wrappers over the `Scenario` dispatch) until the
// wrappers are removed; `scenario::tests` proves wrapper/scenario parity.
#[allow(deprecated)]
mod tests {
    use super::*;
    use exflow_model::presets::moe_gpt_m;

    fn tiny_engine(nodes: usize, gpn: usize) -> InferenceEngine {
        let mut model = moe_gpt_m(8);
        model.n_layers = 6; // keep tests fast
        InferenceEngine::builder(model, ClusterSpec::new(nodes, gpn).unwrap())
            .requests_per_gpu(16)
            .n_iterations(2)
            .prompt_len(16)
            .profile_tokens(1500)
            .seed(11)
            .build()
    }

    #[test]
    fn all_modes_process_every_token() {
        let engine = tiny_engine(2, 2);
        for mode in ParallelismMode::ALL {
            let r = engine.run(mode);
            assert_eq!(r.tokens_processed, 4 * 16 * 2, "{mode}");
            assert!(r.total_time > 0.0);
            assert!(r.breakdown.total() > 0.0);
        }
    }

    #[test]
    fn context_coherence_cuts_alltoall_traffic() {
        let engine = tiny_engine(2, 2);
        let vanilla = engine.run(ParallelismMode::Vanilla);
        let cc = engine.run(ParallelismMode::ContextCoherent);
        assert!(
            cc.alltoall_bytes.cross_gpu() < vanilla.alltoall_bytes.cross_gpu(),
            "cc {} vs vanilla {}",
            cc.alltoall_bytes.cross_gpu(),
            vanilla.alltoall_bytes.cross_gpu()
        );
        // Vanilla issues no AllGather at all.
        assert_eq!(vanilla.allgather_bytes.total(), 0);
        assert!(cc.allgather_bytes.total() > 0);
    }

    #[test]
    fn affinity_placement_improves_dispatch_locality() {
        let engine = tiny_engine(2, 2);
        let cc = engine.run(ParallelismMode::ContextCoherent);
        let aff = engine.run(ParallelismMode::ContextCoherentAffinity);
        assert!(
            aff.dispatch.gpu_local_fraction() > cc.dispatch.gpu_local_fraction(),
            "affinity {} vs cc {}",
            aff.dispatch.gpu_local_fraction(),
            cc.dispatch.gpu_local_fraction()
        );
    }

    #[test]
    fn exflow_beats_vanilla_end_to_end() {
        let engine = tiny_engine(2, 2);
        let vanilla = engine.run(ParallelismMode::Vanilla);
        let exflow = engine.run(ParallelismMode::ContextCoherentAffinity);
        assert!(
            exflow.throughput() > vanilla.throughput(),
            "exflow {} <= vanilla {}",
            exflow.throughput(),
            vanilla.throughput()
        );
    }

    #[test]
    fn parallel_build_yields_identical_placements_and_reports() {
        let build = |threads: usize| {
            let mut model = moe_gpt_m(8);
            model.n_layers = 6;
            InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
                .requests_per_gpu(16)
                .n_iterations(2)
                .prompt_len(16)
                .profile_tokens(1500)
                .placement_restarts(4)
                .parallelism(Parallelism::new(threads))
                .seed(11)
                .build()
        };
        let seq = build(1);
        for threads in [2, 8] {
            let par = build(threads);
            assert_eq!(
                par.placement_for(ParallelismMode::ContextCoherentAffinity),
                seq.placement_for(ParallelismMode::ContextCoherentAffinity),
                "{threads} threads diverged"
            );
            let a = seq.run(ParallelismMode::ContextCoherentAffinity);
            let b = par.run(ParallelismMode::ContextCoherentAffinity);
            assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
            assert_eq!(a.dispatch, b.dispatch);
        }
    }

    #[test]
    fn gap_backend_is_a_pure_speed_knob() {
        let build = |backend: GapBackend| {
            let mut model = moe_gpt_m(8);
            model.n_layers = 6;
            InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
                .requests_per_gpu(16)
                .n_iterations(2)
                .prompt_len(16)
                .profile_tokens(1500)
                .gap_backend(backend)
                .seed(11)
                .build()
        };
        let dense = build(GapBackend::Dense);
        let sparse = build(GapBackend::Sparse);
        assert_eq!(
            dense.placement_for(ParallelismMode::ContextCoherentAffinity),
            sparse.placement_for(ParallelismMode::ContextCoherentAffinity),
            "backends must solve to the same placement"
        );
        let a = dense.run(ParallelismMode::ContextCoherentAffinity);
        let b = sparse.run(ParallelismMode::ContextCoherentAffinity);
        assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
        assert_eq!(a.dispatch, b.dispatch);
    }

    #[test]
    fn runs_are_deterministic() {
        let engine = tiny_engine(1, 4);
        let a = engine.run(ParallelismMode::ContextCoherentAffinity);
        let b = engine.run(ParallelismMode::ContextCoherentAffinity);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.dispatch, b.dispatch);
        assert_eq!(a.alltoall_bytes, b.alltoall_bytes);
    }

    #[test]
    fn single_gpu_has_no_cross_traffic() {
        let mut model = moe_gpt_m(8);
        model.n_layers = 4;
        let engine = InferenceEngine::builder(model, ClusterSpec::single_node(1).unwrap())
            .requests_per_gpu(16)
            .n_iterations(1)
            .profile_tokens(500)
            .build();
        let r = engine.run(ParallelismMode::ContextCoherentAffinity);
        assert_eq!(r.alltoall_bytes.cross_gpu(), 0);
        assert_eq!(r.dispatch.gpu_local_fraction(), 1.0);
    }

    #[test]
    fn custom_placement_is_respected() {
        let engine = tiny_engine(1, 4);
        let rr = engine.placement_for(ParallelismMode::Vanilla).clone();
        let via_custom = engine.run_with_placement(ParallelismMode::ContextCoherent, &rr);
        let via_default = engine.run(ParallelismMode::ContextCoherent);
        assert_eq!(via_custom.dispatch, via_default.dispatch);
    }

    #[test]
    #[should_panic(expected = "must divide across")]
    fn indivisible_expert_count_rejected() {
        let model = moe_gpt_m(8);
        let _ = InferenceEngine::builder(model, ClusterSpec::new(3, 1).unwrap()).build();
    }

    fn online_engine(threads: usize) -> InferenceEngine {
        let mut model = moe_gpt_m(8);
        model.n_layers = 5;
        InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
            .requests_per_gpu(32)
            .n_iterations(2)
            .prompt_len(8)
            .profile_tokens(800)
            .parallelism(Parallelism::new(threads))
            .online(OnlineConfig {
                replan_every: 1,
                drift_threshold: 0.08,
                migration_budget_bytes: u64::MAX,
                decay: 0.3,
                ..OnlineConfig::default()
            })
            .seed(11)
            .build()
    }

    fn online_drift(engine: &InferenceEngine, windows: usize) -> DriftSchedule {
        DriftSchedule::piecewise(&engine.config().routing_spec, 2, windows)
    }

    #[test]
    fn online_adaptation_beats_static_placement_under_drift() {
        let engine = online_engine(1);
        let drift = online_drift(&engine, 6);
        let adaptive = engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
        // Static baseline: infinite threshold never re-plans.
        let mut static_cfg = engine.config().clone();
        static_cfg.online.drift_threshold = f64::INFINITY;
        let static_engine = InferenceEngine::from_config(static_cfg);
        let fixed = static_engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
        assert!(
            adaptive.migrations.replans > 0,
            "drift must trigger re-plans"
        );
        assert_eq!(fixed.migrations.replans, 0);
        assert!(
            adaptive.dispatch().gpu_local_fraction() > fixed.dispatch().gpu_local_fraction(),
            "adaptive {} vs static {}",
            adaptive.dispatch().gpu_local_fraction(),
            fixed.dispatch().gpu_local_fraction()
        );
    }

    #[test]
    fn online_drift_signal_spikes_at_the_phase_boundary() {
        let engine = online_engine(1);
        let drift = online_drift(&engine, 6);
        let report = engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
        assert_eq!(report.drift.len(), 6);
        // The phase flips after window 2 (6 windows, 2 phases): the
        // signal at window 3 dwarfs the in-phase sampling noise before it.
        assert!(
            report.drift[3] > 1.75 * report.drift[1],
            "boundary {} vs in-phase {}",
            report.drift[3],
            report.drift[1]
        );
        // Migration accounting is internally consistent.
        let moved: u64 = report.replans.iter().map(|r| r.experts_moved).sum();
        assert_eq!(moved, report.migrations.experts_moved);
        assert_eq!(
            report.migrations.bytes.total(),
            report.replans.iter().map(|r| r.bytes_moved).sum::<u64>()
        );
        assert!(report.total_time() > 0.0 && report.throughput() > 0.0);
    }

    #[test]
    fn online_budget_caps_bytes_per_replan() {
        let engine = online_engine(1);
        let bytes_per_expert = engine.config().model.expert_params() * 2;
        let budget = 4 * bytes_per_expert;
        let mut cfg = engine.config().clone();
        cfg.online.migration_budget_bytes = budget;
        let capped = InferenceEngine::from_config(cfg);
        let drift = online_drift(&capped, 6);
        let report = capped.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
        assert!(report.migrations.replans > 0);
        for replan in &report.replans {
            assert!(
                replan.bytes_moved <= budget,
                "re-plan at window {} moved {} bytes over the {} budget",
                replan.window,
                replan.bytes_moved,
                budget
            );
        }
    }

    #[test]
    fn online_runs_are_thread_count_invariant() {
        let seq = online_engine(1);
        let drift = online_drift(&seq, 4);
        let a = seq.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
        for threads in [2, 8] {
            let par = online_engine(threads);
            let b = par.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
            assert_eq!(a, b, "{threads} threads diverged");
        }
    }

    #[test]
    fn replicas_serve_dispatch_locally() {
        use exflow_placement::ReplicationPlan;
        let engine = tiny_engine(2, 2);
        let base = engine
            .placement_for(ParallelismMode::ContextCoherentAffinity)
            .clone();
        let bare = engine.run_with_placement(ParallelismMode::ContextCoherentAffinity, &base);
        let plan = ReplicationPlan::most_popular(engine.objective(), base, 3);
        let rep = engine.run_with_replication(ParallelismMode::ContextCoherentAffinity, &plan);
        assert!(
            rep.dispatch.gpu_local_fraction() > bare.dispatch.gpu_local_fraction(),
            "replicas {} vs bare {}",
            rep.dispatch.gpu_local_fraction(),
            bare.dispatch.gpu_local_fraction()
        );
        // Same tokens served either way.
        assert_eq!(rep.tokens_processed, bare.tokens_processed);
        assert_eq!(rep.dispatch.total, bare.dispatch.total);
        // An empty plan is exactly the bare run.
        let empty = ReplicationPlan::bare(
            engine
                .placement_for(ParallelismMode::ContextCoherentAffinity)
                .clone(),
        );
        let same = engine.run_with_replication(ParallelismMode::ContextCoherentAffinity, &empty);
        assert_eq!(same, bare);
    }

    #[test]
    fn replication_aware_online_run_churns_replicas_within_budget() {
        let bytes_per_expert = online_engine(1).config().model.expert_params() * 2;
        let slots = 6u64;
        let mut cfg = online_engine(1).config().clone();
        cfg.online.replica_memory_bytes = slots * bytes_per_expert;
        cfg.online.migration_budget_bytes = 24 * bytes_per_expert;
        let engine = InferenceEngine::from_config(cfg);
        let drift = online_drift(&engine, 6);
        let report = engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
        assert!(report.migrations.replans > 0, "drift must trigger re-plans");
        assert!(
            report.migrations.replicas_added > 0,
            "the joint budget must buy at least one replica under drift"
        );
        assert!(report.final_extra_copies <= slots);
        for replan in &report.replans {
            assert!(
                replan.bytes_moved <= replan.budget_bytes,
                "window {}: {} bytes over the {} budget",
                replan.window,
                replan.bytes_moved,
                replan.budget_bytes
            );
        }
        // Aggregate churn is consistent with the per-event log.
        let added: u64 = report.replans.iter().map(|r| r.replicas_added).sum();
        let dropped: u64 = report.replans.iter().map(|r| r.replicas_dropped).sum();
        assert_eq!(added, report.migrations.replicas_added);
        assert_eq!(dropped, report.migrations.replicas_dropped);
    }

    #[test]
    fn replication_beats_owner_moves_only_at_equal_migration_budget() {
        let bytes_per_expert = online_engine(1).config().model.expert_params() * 2;
        let budget = 8 * bytes_per_expert;
        let run = |replica_memory: u64| {
            let mut cfg = online_engine(1).config().clone();
            cfg.online.migration_budget_bytes = budget;
            cfg.online.replica_memory_bytes = replica_memory;
            let engine = InferenceEngine::from_config(cfg);
            let drift = online_drift(&engine, 6);
            engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift)
        };
        let owner_only = run(0);
        let joint = run(8 * bytes_per_expert);
        assert_eq!(owner_only.final_extra_copies, 0);
        assert!(
            joint.dispatch().gpu_local_fraction() > owner_only.dispatch().gpu_local_fraction(),
            "joint {} vs owner-only {}",
            joint.dispatch().gpu_local_fraction(),
            owner_only.dispatch().gpu_local_fraction()
        );
    }

    #[test]
    fn cc_top2_replication_serves_secondaries_from_replicas() {
        // Context-coherent top-2 no longer falls back to owner moves:
        // primaries stay pinned to the owner (the route-derivable
        // secondary-merge meeting point) while secondaries serve from
        // replica holders, so a replica budget buys real locality.
        use exflow_model::GateKind;
        let run = |replica_memory: u64| {
            let mut model = moe_gpt_m(8).with_gate(GateKind::Top2);
            model.n_layers = 5;
            let engine = InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
                .requests_per_gpu(16)
                .n_iterations(2)
                .prompt_len(8)
                .profile_tokens(800)
                .online(OnlineConfig {
                    replan_every: 1,
                    drift_threshold: 0.08,
                    decay: 0.3,
                    replica_memory_bytes: replica_memory,
                    ..OnlineConfig::default()
                })
                .seed(11)
                .build();
            let drift = DriftSchedule::piecewise(&engine.config().routing_spec, 2, 4);
            engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift)
        };
        let owner_only = run(0);
        let with_budget = run(1 << 30);
        assert!(
            with_budget.migrations.replicas_added > 0,
            "a generous replica budget must buy at least one replica"
        );
        assert!(
            with_budget.dispatch().gpu_local_fraction()
                > owner_only.dispatch().gpu_local_fraction(),
            "replicas {} vs owner-only {}",
            with_budget.dispatch().gpu_local_fraction(),
            owner_only.dispatch().gpu_local_fraction()
        );
    }

    #[test]
    fn budget_rollover_and_drift_scaling_are_deterministic_and_compliant() {
        let bytes_per_expert = online_engine(1).config().model.expert_params() * 2;
        let base_budget = 6 * bytes_per_expert;
        let run = || {
            let mut cfg = online_engine(1).config().clone();
            cfg.online.migration_budget_bytes = base_budget;
            cfg.online.budget_rollover = true;
            cfg.online.scale_budget_by_drift = true;
            let engine = InferenceEngine::from_config(cfg);
            let drift = online_drift(&engine, 6);
            engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "rollover + drift scaling must stay deterministic");
        assert!(a.migrations.replans > 0);
        // Budget accrues only at re-plan opportunities: after n re-plans
        // (including silent ones) at most (n+1) x base is available, so no
        // event's effective budget can exceed window x base; and spend
        // always respects the effective budget.
        for replan in &a.replans {
            assert!(replan.bytes_moved <= replan.budget_bytes);
            assert!(replan.budget_bytes <= (replan.window as u64 + 1) * base_budget);
        }
    }

    #[test]
    fn replan_events_report_consistent_solver_costs() {
        let engine = online_engine(1);
        let drift = online_drift(&engine, 6);
        let report = engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift);
        assert!(report.migrations.replans > 0);
        for replan in &report.replans {
            let c = replan.solver_cost;
            // Every considered candidate was either recomputed or served
            // from the swap-gain cache, and an unlimited budget never
            // truncates.
            assert_eq!(c.considered, c.evaluated + c.reused);
            assert!(c.considered > 0);
            assert!(!c.truncated);
        }
    }

    #[test]
    fn replan_time_budget_truncates_deterministically() {
        let run = |scan_budget: u64| {
            let mut cfg = online_engine(1).config().clone();
            cfg.online.replan_time_budget = scan_budget;
            let engine = InferenceEngine::from_config(cfg);
            let drift = online_drift(&engine, 6);
            engine.run_online(ParallelismMode::ContextCoherentAffinity, &drift)
        };
        let tight = run(400);
        let again = run(400);
        assert_eq!(tight, again, "budgeted runs must stay deterministic");
        assert!(tight.migrations.replans > 0, "tight budget still re-plans");
        for replan in &tight.replans {
            let c = replan.solver_cost;
            assert!(c.considered <= 400, "meter overshot: {}", c.considered);
            assert!(c.truncated, "a 400-candidate budget must truncate here");
        }
        // The unlimited budget is the exact pre-meter behavior.
        let unlimited = run(u64::MAX);
        let default = run(OnlineConfig::default().replan_time_budget);
        assert_eq!(unlimited, default);
        assert!(unlimited.replans.iter().all(|r| !r.solver_cost.truncated));
    }

    #[test]
    fn replan_policy_carries_the_time_budget() {
        let policy = ReplanPolicy {
            replan_time_budget: 123,
            ..ReplanPolicy::default()
        };
        let oc = OnlineConfig::from(policy);
        assert_eq!(oc.replan_time_budget, 123);
        assert_eq!(ReplanPolicy::from(oc), policy);
        let stamped = OnlineConfig::default().with_replan_policy(policy);
        assert_eq!(stamped.replan_time_budget, 123);
    }

    #[test]
    fn online_without_affinity_mode_never_migrates() {
        let engine = online_engine(1);
        let drift = online_drift(&engine, 4);
        let report = engine.run_online(ParallelismMode::ContextCoherent, &drift);
        assert_eq!(report.migrations.replans, 0);
        assert!(report.replans.is_empty());
        assert_eq!(report.migrations.bytes.total(), 0);
    }

    fn top2_engine(nodes: usize, gpn: usize) -> InferenceEngine {
        use exflow_model::GateKind;
        // More layers than the top-1 tests: top-2 context coherence pays an
        // extra secondary-return Alltoall per layer, so its AllGather
        // amortization needs the paper's deeper-model regime to win.
        let mut model = moe_gpt_m(8).with_gate(GateKind::Top2);
        model.n_layers = 12;
        InferenceEngine::builder(model, ClusterSpec::new(nodes, gpn).unwrap())
            .requests_per_gpu(16)
            .n_iterations(2)
            .prompt_len(16)
            .profile_tokens(1500)
            .seed(11)
            .build()
    }

    #[test]
    fn top2_doubles_dispatch_decisions() {
        let mut model = moe_gpt_m(8);
        model.n_layers = 12; // same depth as the top-2 engine
        let e1 = InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
            .requests_per_gpu(16)
            .n_iterations(2)
            .prompt_len(16)
            .profile_tokens(1500)
            .seed(11)
            .build();
        let e2 = top2_engine(2, 2);
        let r1 = e1.run(ParallelismMode::Vanilla);
        let r2 = e2.run(ParallelismMode::Vanilla);
        assert_eq!(r2.dispatch.total, 2 * r1.dispatch.total);
        // Generated-token count is unchanged — copies merge back.
        assert_eq!(r1.tokens_processed, r2.tokens_processed);
    }

    #[test]
    fn top2_increases_alltoall_traffic() {
        let e1 = tiny_engine(2, 2);
        let e2 = top2_engine(2, 2);
        for mode in [ParallelismMode::Vanilla, ParallelismMode::ContextCoherent] {
            let b1 = e1.run(mode).alltoall_bytes.cross_gpu();
            let b2 = e2.run(mode).alltoall_bytes.cross_gpu();
            assert!(
                b2 as f64 > 1.5 * b1 as f64,
                "{mode}: top-2 bytes {b2} vs top-1 {b1}"
            );
        }
    }

    #[test]
    fn top2_exflow_still_beats_vanilla() {
        let engine = top2_engine(2, 2);
        let vanilla = engine.run(ParallelismMode::Vanilla);
        let exflow = engine.run(ParallelismMode::ContextCoherentAffinity);
        assert!(
            exflow.throughput() > vanilla.throughput(),
            "top-2 exflow {} <= vanilla {}",
            exflow.throughput(),
            vanilla.throughput()
        );
    }

    #[test]
    fn top2_runs_are_deterministic() {
        let engine = top2_engine(1, 4);
        let a = engine.run(ParallelismMode::ContextCoherentAffinity);
        let b = engine.run(ParallelismMode::ContextCoherentAffinity);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.dispatch, b.dispatch);
    }
}
