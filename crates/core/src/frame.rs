//! Token wire frames: how tokens are serialized into collective payloads.
//!
//! Each token crossing the wire occupies a frame of exactly
//! `ModelConfig::token_bytes()` bytes — the true fp16 activation size of
//! the model — so the virtual-clock α–β accounting sees the real traffic
//! volume. Inside the frame the engine stores the token's id, domain, and
//! its reduced-dimension (`sim_dim`) f32 embedding; the remainder is
//! padding standing in for the activation elements we do not simulate.

/// A token in flight or at rest on a rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Global token id within the current iteration.
    pub id: u32,
    /// Home rank (where the request lives, data-parallel).
    pub home: u32,
    /// Corpus domain of the token.
    pub domain: u32,
    /// Which of the token's top-k experts this copy targets (0 = primary).
    /// Under top-1 gating this is always 0.
    pub slot: u32,
    /// Reduced-dimension embedding the expert FFNs actually transform.
    pub emb: Vec<f32>,
}

/// Frame header size: id + home + domain + slot + embedding length.
const HEADER: usize = 4 + 4 + 4 + 4 + 4;

/// Bytes one token occupies on the wire for a model whose activation is
/// `token_bytes` wide and whose simulated embedding has `sim_dim` floats.
pub fn frame_size(token_bytes: u64, sim_dim: usize) -> usize {
    (token_bytes as usize).max(HEADER + 4 * sim_dim)
}

/// Serialize tokens into one contiguous buffer of `frame` bytes each.
pub fn encode(tokens: &[Token], frame: usize) -> Vec<u8> {
    let mut buf = vec![0u8; tokens.len() * frame];
    for (slot, tok) in tokens.iter().enumerate() {
        let base = slot * frame;
        debug_assert!(HEADER + 4 * tok.emb.len() <= frame, "frame too small");
        buf[base..base + 4].copy_from_slice(&tok.id.to_le_bytes());
        buf[base + 4..base + 8].copy_from_slice(&tok.home.to_le_bytes());
        buf[base + 8..base + 12].copy_from_slice(&tok.domain.to_le_bytes());
        buf[base + 12..base + 16].copy_from_slice(&tok.slot.to_le_bytes());
        buf[base + 16..base + 20].copy_from_slice(&(tok.emb.len() as u32).to_le_bytes());
        for (i, &v) in tok.emb.iter().enumerate() {
            let off = base + HEADER + 4 * i;
            buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

/// Decode a buffer of `frame`-byte frames back into tokens.
pub fn decode(buf: &[u8], frame: usize) -> Vec<Token> {
    assert!(
        frame >= HEADER && buf.len().is_multiple_of(frame),
        "buffer is not a whole number of frames"
    );
    let mut out = Vec::with_capacity(buf.len() / frame);
    for slot in 0..buf.len() / frame {
        let base = slot * frame;
        let id = u32::from_le_bytes(buf[base..base + 4].try_into().unwrap());
        let home = u32::from_le_bytes(buf[base + 4..base + 8].try_into().unwrap());
        let domain = u32::from_le_bytes(buf[base + 8..base + 12].try_into().unwrap());
        let slot = u32::from_le_bytes(buf[base + 12..base + 16].try_into().unwrap());
        let len = u32::from_le_bytes(buf[base + 16..base + 20].try_into().unwrap()) as usize;
        assert!(
            HEADER + 4 * len <= frame,
            "corrupt frame: embedding too long"
        );
        let emb = (0..len)
            .map(|i| {
                let off = base + HEADER + 4 * i;
                f32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
            })
            .collect();
        out.push(Token {
            id,
            home,
            domain,
            slot,
            emb,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(id: u32, dim: usize) -> Token {
        Token {
            id,
            home: id % 4,
            domain: id % 3,
            slot: id % 2,
            emb: (0..dim).map(|i| id as f32 + i as f32 * 0.25).collect(),
        }
    }

    #[test]
    fn round_trip_preserves_tokens() {
        let frame = frame_size(2048, 16);
        let tokens: Vec<Token> = (0..7).map(|i| token(i, 16)).collect();
        let buf = encode(&tokens, frame);
        assert_eq!(buf.len(), 7 * frame);
        assert_eq!(decode(&buf, frame), tokens);
    }

    #[test]
    fn frame_size_respects_true_activation_width() {
        // GPT-M: 1024 dims of fp16 = 2048 bytes, far above header needs.
        assert_eq!(frame_size(2048, 16), 2048);
        // Tiny test models never shrink below what the header needs.
        assert!(frame_size(8, 32) >= HEADER + 128);
    }

    #[test]
    fn empty_token_list_is_empty_buffer() {
        let frame = frame_size(64, 4);
        assert!(encode(&[], frame).is_empty());
        assert!(decode(&[], frame).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number of frames")]
    fn ragged_buffer_rejected() {
        let _ = decode(&[0u8; 100], 64);
    }

    #[test]
    fn padding_bytes_do_not_leak_between_tokens() {
        let frame = frame_size(2048, 4);
        let a = vec![token(1, 4)];
        let b = vec![token(1, 4), token(2, 4)];
        let enc_a = encode(&a, frame);
        let enc_b = encode(&b, frame);
        assert_eq!(&enc_b[..frame], &enc_a[..]);
    }
}
