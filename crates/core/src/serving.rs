//! Request-level serving front-end: a deterministic discrete-event loop
//! over an arrival process, with per-request queueing and continuous
//! batching, feeding assembled decode batches through the engine's
//! dispatch/collectives path.
//!
//! Where [`InferenceEngine::run_online`] consumes pre-aggregated windows
//! of traffic, [`InferenceEngine::run_serving`] consumes *requests*: each
//! arrives at a timestamp drawn from a seeded
//! [`ArrivalProcess`], waits in a
//! FIFO queue until the [`BatchPolicy`] opens a batch, then generates
//! `decode_steps` tokens — one engine pass per step — under continuous
//! batching (finished requests leave the in-flight pool at step
//! boundaries, queued ones top it up). Virtual serving time advances by
//! each pass's simulated `total_time`, so queueing delay, batching
//! efficiency, and placement quality all land in the same clock.
//!
//! Drift handling composes exactly like the windowed mode: virtual time
//! is divided into serving windows of `window_duration`; when the clock
//! crosses a boundary, the realized expert paths folded into the decayed
//! streaming estimate produce a drift signal, and an over-threshold
//! signal triggers the same budgeted re-plan (`replan_step`) the online
//! loop uses. The migration itself overlaps with serving: expert weights
//! stream over the interconnect in the background while decode steps
//! keep running on the *old* placement, and the new placement activates
//! only once the copy lands. Overlap is not free — steps that run while
//! a copy is in flight share links with it and pay a
//! [`MIGRATION_CONTENTION`] surcharge — so re-placement cost still
//! surfaces in the latency tail, as contention plus deferred benefit
//! rather than a dead stop.
//!
//! The whole run is a pure function of `(config, drift schedule, serving
//! config)`: the event queue orders events by `(time, sequence)` with
//! total-order float comparison, every random draw comes from a seeded
//! stream, and the engine passes themselves are bit-identical at any
//! thread width — so [`ServingReport`]s are too.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use exflow_affinity::{RoutingTrace, StreamingAffinity};
use exflow_model::arrival::ArrivalProcess;
use exflow_model::{DriftSchedule, TokenBatch};
use exflow_placement::Placement;

use crate::engine::InferenceEngine;
use crate::modes::ParallelismMode;
use crate::report::{DispatchStats, MigrationStats, ServingReport};

/// Fractional slowdown of a decode step that overlaps a background
/// weight copy: the copy streams over the same links the step's
/// collectives use, so an in-flight step takes `1 + MIGRATION_CONTENTION`
/// times its uncontended duration until the copy lands.
pub const MIGRATION_CONTENTION: f64 = 0.25;

/// How the serving loop opens a fresh batch from the waiting queue.
///
/// Once a batch is in flight, continuous batching applies regardless of
/// policy: at every decode-step boundary, queued requests top the pool
/// back up to `max_size` and finished requests leave. The policy only
/// gates *opening* a batch when the server sits idle.
///
/// ```
/// use exflow_core::BatchPolicy;
///
/// let p = BatchPolicy::SizeOrWait { max_size: 4, max_wait: 2.0 };
/// assert!(p.ready(4, 0.0)); // a full batch closes immediately
/// assert!(p.ready(1, 2.0)); // the oldest request hit the wait cap
/// assert!(!p.ready(3, 1.0)); // otherwise keep accumulating
///
/// // Greedy never holds a request back.
/// assert!(BatchPolicy::Greedy { max_size: 4 }.ready(1, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Open once `max_size` requests are queued **or** the oldest queued
    /// request has waited `max_wait` virtual seconds, whichever first.
    SizeOrWait {
        /// Most requests one decode batch holds.
        max_size: usize,
        /// Longest the oldest queued request waits before a partial
        /// batch opens anyway.
        max_wait: f64,
    },
    /// Open as soon as any request is queued (max_wait = 0): lowest
    /// queueing delay, worst batch occupancy.
    Greedy {
        /// Most requests one decode batch holds.
        max_size: usize,
    },
}

impl BatchPolicy {
    /// The batch-size cap.
    pub fn max_size(&self) -> usize {
        match *self {
            BatchPolicy::SizeOrWait { max_size, .. } | BatchPolicy::Greedy { max_size } => max_size,
        }
    }

    /// Should an idle server open a batch, given `queued` waiting
    /// requests whose oldest has waited `oldest_wait`?
    pub fn ready(&self, queued: usize, oldest_wait: f64) -> bool {
        if queued == 0 {
            return false;
        }
        match *self {
            BatchPolicy::SizeOrWait { max_size, max_wait } => {
                queued >= max_size || oldest_wait >= max_wait
            }
            BatchPolicy::Greedy { .. } => true,
        }
    }

    fn validate(&self) {
        assert!(self.max_size() >= 1, "batch size cap must be >= 1");
        if let BatchPolicy::SizeOrWait { max_wait, .. } = *self {
            assert!(
                max_wait >= 0.0 && max_wait.is_finite(),
                "max_wait must be finite and >= 0"
            );
        }
    }
}

/// Configuration of one [`InferenceEngine::run_serving`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Seeded arrival process generating request timestamps (rates are in
    /// requests per virtual second — calibrate against
    /// [`InferenceEngine::probe_step_time`]).
    pub arrival: ArrivalProcess,
    /// Requests to serve.
    pub n_requests: usize,
    /// Tokens each request generates (decode steps it occupies a batch
    /// slot for).
    pub decode_steps: usize,
    /// Batch-assembly policy.
    pub batch: BatchPolicy,
    /// Length of one serving window in virtual seconds: drift checks and
    /// re-plans happen when the clock crosses window boundaries, mirroring
    /// the windowed online mode's cadence.
    pub window_duration: f64,
}

impl ServingConfig {
    fn validate(&self) {
        assert!(self.n_requests >= 1, "need at least one request");
        assert!(self.decode_steps >= 1, "need at least one decode step");
        assert!(
            self.window_duration > 0.0 && self.window_duration.is_finite(),
            "window duration must be positive and finite"
        );
        self.batch.validate();
    }
}

/// One request's lifecycle state inside the event loop.
struct Request {
    arrival: f64,
    domain: usize,
    /// `routes[step][layer]` = gated experts of the token this request
    /// generates at `step`.
    routes: Vec<Vec<Vec<u16>>>,
    steps_done: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// Request `i` joins the queue.
    Arrival(usize),
    /// Request `i`'s `max_wait` expired (no-op if it already started).
    WaitDeadline(usize),
    /// The in-flight batch finished its current decode step.
    StepDone,
}

/// Event-queue entry: ordered by `(time, seq)` — total-order float
/// comparison, then insertion sequence — so the pop order is a pure
/// function of the pushes.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Min-heap of events with a monotone insertion sequence for ties.
struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
}

impl EventQueue {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

impl InferenceEngine {
    /// Virtual time of one full-occupancy decode step: a single batch of
    /// `batch_size` tokens through `mode`'s placement at prompt-length
    /// context. Serving scenarios calibrate arrival rates and batch waits
    /// against this (e.g. an offered load of `0.8 * batch_size /
    /// (decode_steps * probe)` requests per virtual second keeps a
    /// size-`batch_size` server at 80% utilization).
    pub fn probe_step_time(&self, mode: ParallelismMode, batch_size: usize) -> f64 {
        assert!(batch_size >= 1, "probe batch must hold at least one token");
        let cfg = self.config();
        let batch = TokenBatch::sample(
            self.routing(),
            &cfg.corpus,
            batch_size,
            cfg.model.gate.k(),
            cfg.seed ^ 0x5e_41_9e,
        );
        let no_replicas = vec![Vec::new(); cfg.model.n_layers];
        self.run_with_batches(mode, self.placement_for(mode), &no_replicas, &[batch], 0)
            .total_time
    }

    /// Serve `serving.n_requests` requests arriving per
    /// `serving.arrival` under continuous batching, interleaving the
    /// online mode's drift-triggered budgeted re-placement with serving
    /// time. See the [module docs](crate::serving) for the event-loop
    /// semantics; the result is bit-identical at any thread width.
    pub fn run_serving(
        &self,
        mode: ParallelismMode,
        drift: &DriftSchedule,
        serving: &ServingConfig,
    ) -> ServingReport {
        serving.validate();
        let cfg = self.config();
        let oc = cfg.online;
        let e = cfg.model.n_experts;
        let shape = drift.model_at(0);
        assert_eq!(shape.n_layers(), cfg.model.n_layers, "drift layer mismatch");
        assert_eq!(shape.n_experts(), e, "drift expert mismatch");
        assert_eq!(
            shape.n_domains(),
            cfg.corpus.domain_weights.len(),
            "drift domain mismatch"
        );

        let n = serving.n_requests;
        let max_size = serving.batch.max_size();
        let window_of = |t: f64| -> usize {
            ((t / serving.window_duration) as usize).min(drift.n_windows() - 1)
        };

        // Seeded traffic: arrival timestamps from the arrival process,
        // then each request's domain and full decode route from the
        // routing model of the window it arrives in (its own seed stream,
        // disjoint from profiling and from the windowed mode's).
        let arrivals = serving.arrival.sample(n, cfg.seed ^ 0xac71_0e55);
        let k = cfg.model.gate.k();
        let mut requests: Vec<Request> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5e59,
                );
                let model = drift.model_at(window_of(t));
                let domain = cfg.corpus.sample_domain(&mut rng);
                let routes = (0..serving.decode_steps)
                    .map(|_| model.sample_route(&mut rng, domain, k))
                    .collect();
                Request {
                    arrival: t,
                    domain,
                    routes,
                    steps_done: 0,
                }
            })
            .collect();

        // Streaming estimator and re-plan state, exactly as run_online
        // seeds them.
        let mut streaming = StreamingAffinity::new(cfg.model.n_layers, e, oc.decay);
        streaming.observe(self.profile_trace());
        let mut reference = streaming.snapshot();
        let mut placement = self.placement_for(mode).clone();
        let mut replicated: Vec<Vec<usize>> = vec![Vec::new(); cfg.model.n_layers];
        let mut carry = 0u64;
        let mut cur_window = 0usize;
        let mut pending_paths: Vec<Vec<u16>> = Vec::new();
        let mut drifts = Vec::new();
        let mut replans = Vec::new();
        let mut migrations = MigrationStats::default();

        // Event loop state.
        let mut events = EventQueue::new();
        for (i, &t) in arrivals.iter().enumerate() {
            events.push(t, EventKind::Arrival(i));
        }
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut in_flight: Vec<usize> = Vec::new();
        let mut stepping = false;
        // An in-flight background weight copy: `(lands_at, placement,
        // replicas)` — the *stale* plan steps keep using until the copy
        // completes. `placement`/`replicated` already hold the new plan.
        let mut copying: Option<(f64, Placement, Vec<Vec<usize>>)> = None;
        let mut latencies: Vec<f64> = Vec::with_capacity(n);
        let mut makespan = 0.0f64;
        let mut queue_depth: Vec<(f64, usize)> = Vec::new();
        let mut occupancy = vec![0u64; max_size + 1];
        let mut steps = 0u64;
        let mut busy = 0.0f64;
        let mut dispatch = DispatchStats::default();

        while let Some(ev) = events.pop() {
            let clock = ev.time;
            match ev.kind {
                EventKind::Arrival(i) => {
                    queue.push_back(i);
                    queue_depth.push((clock, queue.len()));
                    if let BatchPolicy::SizeOrWait { max_wait, .. } = serving.batch {
                        events.push(clock + max_wait, EventKind::WaitDeadline(i));
                    }
                }
                // Deadlines carry no state of their own; they exist to
                // re-run the batch-opening check below.
                EventKind::WaitDeadline(_) => {}
                EventKind::StepDone => {
                    stepping = false;
                    // Completions and per-step realized paths.
                    let mut still = Vec::with_capacity(in_flight.len());
                    for &i in &in_flight {
                        let req = &mut requests[i];
                        let path = req.routes[req.steps_done]
                            .iter()
                            .map(|slots| slots[0])
                            .collect();
                        pending_paths.push(path);
                        req.steps_done += 1;
                        if req.steps_done == serving.decode_steps {
                            latencies.push(clock - req.arrival);
                            makespan = makespan.max(clock);
                        } else {
                            still.push(i);
                        }
                    }
                    in_flight = still;

                    // Window boundaries crossed while this step ran: fold
                    // the accumulated paths into the estimate once, then
                    // evaluate each ended window's drift/re-plan exactly
                    // as the windowed loop would.
                    let wnow = window_of(clock);
                    if wnow > cur_window && !pending_paths.is_empty() {
                        streaming
                            .observe(&RoutingTrace::new(std::mem::take(&mut pending_paths), e));
                    }
                    while cur_window < wnow {
                        let ended = cur_window;
                        cur_window += 1;
                        let drift_now = streaming.divergence(&reference);
                        drifts.push(drift_now);
                        let due = (ended + 1).is_multiple_of(oc.replan_every)
                            && ended + 1 < drift.n_windows();
                        if due && drift_now > oc.drift_threshold && mode.uses_affinity() {
                            let live = streaming.snapshot();
                            let stale = (placement.clone(), replicated.clone());
                            if let Some(exec) = self.replan_step(
                                mode,
                                drift_now,
                                &live,
                                &mut placement,
                                &mut replicated,
                                &mut carry,
                            ) {
                                // The weight exchange streams in the
                                // background: steps keep running on the
                                // stale plan (with link contention) and
                                // the new plan activates when the copy
                                // lands. A copy still in flight keeps its
                                // stale plan active and queues this one
                                // behind it.
                                let (start, sp, sr) = match copying.take() {
                                    Some((done, sp, sr)) if done > clock => (done, sp, sr),
                                    _ => (clock, stale.0, stale.1),
                                };
                                copying = Some((start + exec.migration_time, sp, sr));
                                migrations.absorb(&exec);
                                replans.push(exec.event(ended, drift_now));
                            }
                            reference = live;
                        }
                    }
                }
            }

            // After every event: try to open/continue a batch.
            if stepping {
                continue;
            }
            if in_flight.is_empty() {
                // Opening a fresh batch is the policy's call.
                match queue.front() {
                    None => continue,
                    Some(&head) => {
                        let oldest_wait = clock - requests[head].arrival;
                        if !serving.batch.ready(queue.len(), oldest_wait) {
                            continue;
                        }
                    }
                }
            }
            // Continuous batching: top the pool up to the cap.
            while in_flight.len() < max_size {
                match queue.pop_front() {
                    Some(i) => in_flight.push(i),
                    None => break,
                }
            }
            queue_depth.push((clock, queue.len()));

            // One decode step of the pool through the engine: each
            // in-flight request contributes the token of its current step.
            let batch = TokenBatch {
                routes: in_flight
                    .iter()
                    .map(|&i| requests[i].routes[requests[i].steps_done].clone())
                    .collect(),
                domains: in_flight.iter().map(|&i| requests[i].domain).collect(),
            };
            let ctx_offset = in_flight
                .iter()
                .map(|&i| requests[i].steps_done)
                .max()
                .unwrap_or(0);
            if let Some((done, _, _)) = &copying {
                if clock >= *done {
                    copying = None;
                }
            }
            let (active_p, active_r) = match &copying {
                Some((_, sp, sr)) => (sp, sr),
                None => (&placement, &replicated),
            };
            let report = self.run_with_batches(mode, active_p, active_r, &[batch], ctx_offset);
            let step_time = if copying.is_some() {
                report.total_time * (1.0 + MIGRATION_CONTENTION)
            } else {
                report.total_time
            };
            occupancy[in_flight.len()] += 1;
            steps += 1;
            busy += step_time;
            dispatch.merge(&report.dispatch);
            stepping = true;
            events.push(clock + step_time, EventKind::StepDone);
        }

        debug_assert_eq!(latencies.len(), n, "every request must complete");
        latencies.sort_by(f64::total_cmp);
        let last_arrival = arrivals.last().copied().unwrap_or(0.0);
        let offered_load = if last_arrival > 0.0 {
            n as f64 / last_arrival
        } else {
            f64::INFINITY
        };

        ServingReport {
            mode,
            latencies,
            offered_load,
            makespan,
            queue_depth,
            batch_occupancy: occupancy,
            steps,
            busy,
            dispatch,
            drift: drifts,
            replans,
            migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::presets::moe_gpt_m;
    use exflow_topology::ClusterSpec;

    use crate::engine::OnlineConfig;

    fn engine(online: OnlineConfig) -> InferenceEngine {
        let mut model = moe_gpt_m(8);
        model.n_layers = 4;
        InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
            .requests_per_gpu(8)
            .prompt_len(8)
            .profile_tokens(800)
            .online(online)
            .seed(11)
            .build()
    }

    fn adaptive() -> OnlineConfig {
        OnlineConfig {
            replan_every: 1,
            drift_threshold: 0.08,
            migration_budget_bytes: u64::MAX,
            decay: 0.3,
            ..OnlineConfig::default()
        }
    }

    fn static_cfg() -> OnlineConfig {
        OnlineConfig {
            drift_threshold: f64::INFINITY,
            decay: 0.3,
            ..OnlineConfig::default()
        }
    }

    fn scenario(e: &InferenceEngine, mode: ParallelismMode) -> (DriftSchedule, ServingConfig) {
        let schedule = DriftSchedule::piecewise(&e.config().routing_spec, 2, 6);
        let step = e.probe_step_time(mode, 8);
        assert!(step > 0.0);
        let n_requests = 40;
        let decode_steps = 2;
        let rate = 0.8 * 8.0 / (decode_steps as f64 * step);
        let horizon = n_requests as f64 / rate;
        let cfg = ServingConfig {
            arrival: ArrivalProcess::poisson(rate),
            n_requests,
            decode_steps,
            batch: BatchPolicy::SizeOrWait {
                max_size: 8,
                max_wait: 2.0 * step,
            },
            window_duration: horizon / 6.0,
        };
        (schedule, cfg)
    }

    #[test]
    fn serves_every_request_and_reports_sane_metrics() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(adaptive());
        let (schedule, cfg) = scenario(&eng, mode);
        let r = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(r.n_requests(), cfg.n_requests);
        assert!(r.latencies.iter().all(|&l| l > 0.0));
        assert!(r.p50() <= r.p95() && r.p95() <= r.p99());
        assert!(r.goodput() > 0.0);
        assert!(r.goodput() <= r.offered_load);
        assert!(r.makespan > 0.0);
        assert!(r.steps > 0);
        // Step count is bounded by the one-token-per-request-per-step
        // arithmetic.
        let total_tokens = (cfg.n_requests * cfg.decode_steps) as u64;
        assert!(r.steps >= total_tokens / 8);
        assert!(r.steps <= total_tokens);
        assert_eq!(
            r.batch_occupancy.iter().sum::<u64>(),
            r.steps,
            "every step lands in the occupancy histogram"
        );
        assert_eq!(r.batch_occupancy[0], 0, "no empty batches");
        assert!(r.mean_batch_occupancy() > 1.0);
        assert_eq!(
            r.batch_occupancy
                .iter()
                .enumerate()
                .map(|(s, &c)| s as u64 * c)
                .sum::<u64>(),
            total_tokens,
            "occupancy-weighted steps account for every token"
        );
    }

    #[test]
    fn serving_is_deterministic() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(adaptive());
        let (schedule, cfg) = scenario(&eng, mode);
        let a = eng.run_serving(mode, &schedule, &cfg);
        let b = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn drifted_traffic_triggers_replans_that_overlap_with_serving() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(adaptive());
        let (schedule, cfg) = scenario(&eng, mode);
        let r = eng.run_serving(mode, &schedule, &cfg);
        assert!(
            r.migrations.replans > 0,
            "piecewise drift must fire at least one re-plan"
        );
        assert!(r.migrations.time > 0.0);
        assert!(!r.drift.is_empty());
        assert!(r.replans.iter().all(|ev| ev.bytes_moved <= ev.budget_bytes));
    }

    #[test]
    fn static_baseline_never_replans() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, cfg) = scenario(&eng, mode);
        let r = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(r.migrations.replans, 0);
        assert!(r.replans.is_empty());
        assert_eq!(r.n_requests(), cfg.n_requests);
    }

    #[test]
    fn greedy_policy_trades_occupancy_for_queueing() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, mut cfg) = scenario(&eng, mode);
        let waited = eng.run_serving(mode, &schedule, &cfg);
        cfg.batch = BatchPolicy::Greedy { max_size: 8 };
        let greedy = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(greedy.n_requests(), cfg.n_requests);
        // Greedy opens batches earlier, so it can only run more (or
        // equally many) steps at lower (or equal) mean occupancy.
        assert!(greedy.steps >= waited.steps);
        assert!(greedy.mean_batch_occupancy() <= waited.mean_batch_occupancy());
    }

    #[test]
    fn probe_step_time_grows_with_batch_size() {
        let eng = engine(static_cfg());
        let mode = ParallelismMode::ContextCoherentAffinity;
        let small = eng.probe_step_time(mode, 2);
        let large = eng.probe_step_time(mode, 32);
        assert!(small > 0.0);
        assert!(
            large > small,
            "bigger batches must cost more: {small} vs {large}"
        );
    }

    #[test]
    #[should_panic(expected = "window duration")]
    fn zero_window_duration_is_rejected() {
        let eng = engine(static_cfg());
        let schedule = DriftSchedule::piecewise(&eng.config().routing_spec, 2, 6);
        let cfg = ServingConfig {
            arrival: ArrivalProcess::poisson(1.0),
            n_requests: 1,
            decode_steps: 1,
            batch: BatchPolicy::Greedy { max_size: 1 },
            window_duration: 0.0,
        };
        let _ = eng.run_serving(ParallelismMode::Vanilla, &schedule, &cfg);
    }
}
