//! Request-level serving front-end: a deterministic discrete-event loop
//! over an arrival process, with per-request queueing and continuous
//! batching, feeding assembled decode batches through the engine's
//! dispatch/collectives path.
//!
//! Where [`InferenceEngine::run_online`] consumes pre-aggregated windows
//! of traffic, [`InferenceEngine::run_serving`] consumes *requests*: each
//! arrives at a timestamp drawn from a seeded
//! [`ArrivalProcess`], waits in a
//! FIFO queue until the [`BatchPolicy`] opens a batch, then generates
//! `decode_steps` tokens — one engine pass per step — under continuous
//! batching (finished requests leave the in-flight pool at step
//! boundaries, queued ones top it up). Virtual serving time advances by
//! each pass's simulated `total_time`, so queueing delay, batching
//! efficiency, and placement quality all land in the same clock.
//!
//! Drift handling composes exactly like the windowed mode: virtual time
//! is divided into serving windows of `window_duration`; when the clock
//! crosses a boundary, the realized expert paths folded into the decayed
//! streaming estimate produce a drift signal, and an over-threshold
//! signal triggers the same budgeted re-plan (`replan_step`) the online
//! loop uses. The migration itself overlaps with serving: expert weights
//! stream over the interconnect in the background while decode steps
//! keep running on the *old* placement, and the new placement activates
//! only once the copy lands. Overlap is not free — steps that run while
//! a copy is in flight share links with it and pay a
//! [`MIGRATION_CONTENTION`] surcharge — so re-placement cost still
//! surfaces in the latency tail, as contention plus deferred benefit
//! rather than a dead stop.
//!
//! Faults compose on top: a seeded
//! [`FaultSchedule`] injects GPU loss,
//! rejoin, and fleet scale events into the same event queue. On a loss
//! the engine *evacuates* the dead GPU's experts to the survivors — for
//! free where a replica already holds a copy (failover), priced as an
//! *emergency* restore copy otherwise (mandatory, so its byte budget is
//! elevated to whatever the restore needs; it overlaps with serving and
//! charges the same [`MIGRATION_CONTENTION`] surcharge). In-flight
//! requests homed on the lost GPU are re-queued and counted in the
//! report's [`DisruptionStats`]. On a
//! rejoin the engine re-homes experts back onto the returned GPU the
//! same way. Dead GPUs stay in the collectives with empty payloads, so
//! the SPMD clocks — and hence bit-identity across thread counts — are
//! unaffected by fleet churn.
//!
//! The whole run is a pure function of `(config, drift schedule, serving
//! config, fault schedule)`: the event queue orders events by `(time,
//! sequence)` with total-order float comparison, every random draw comes
//! from a seeded stream, and the engine passes themselves are
//! bit-identical at any thread width — so [`ServingReport`]s are too.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use exflow_affinity::{RoutingTrace, StreamingAffinity};
use exflow_model::arrival::ArrivalProcess;
use exflow_model::{DriftSchedule, FaultKind, FaultSchedule, TokenBatch};
use exflow_placement::online::{ExpertMove, MigrationPlan};
use exflow_placement::{LayerReplicas, Placement, ReplicationPlan};

use crate::engine::InferenceEngine;
use crate::modes::ParallelismMode;
use crate::report::{DispatchStats, DisruptionStats, FaultMarker, MigrationStats, ServingReport};

/// Fractional slowdown of a decode step that overlaps a background
/// weight copy: the copy streams over the same links the step's
/// collectives use, so an in-flight step takes `1 + MIGRATION_CONTENTION`
/// times its uncontended duration until the copy lands.
pub const MIGRATION_CONTENTION: f64 = 0.25;

/// How the serving loop opens a fresh batch from the waiting queue.
///
/// Once a batch is in flight, continuous batching applies regardless of
/// policy: at every decode-step boundary, queued requests top the pool
/// back up to `max_size` and finished requests leave. The policy only
/// gates *opening* a batch when the server sits idle.
///
/// ```
/// use exflow_core::BatchPolicy;
///
/// let p = BatchPolicy::SizeOrWait { max_size: 4, max_wait: 2.0 };
/// assert!(p.ready(4, 0.0)); // a full batch closes immediately
/// assert!(p.ready(1, 2.0)); // the oldest request hit the wait cap
/// assert!(!p.ready(3, 1.0)); // otherwise keep accumulating
///
/// // Greedy never holds a request back.
/// assert!(BatchPolicy::Greedy { max_size: 4 }.ready(1, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Open once `max_size` requests are queued **or** the oldest queued
    /// request has waited `max_wait` virtual seconds, whichever first.
    SizeOrWait {
        /// Most requests one decode batch holds.
        max_size: usize,
        /// Longest the oldest queued request waits before a partial
        /// batch opens anyway.
        max_wait: f64,
    },
    /// Open as soon as any request is queued (max_wait = 0): lowest
    /// queueing delay, worst batch occupancy.
    Greedy {
        /// Most requests one decode batch holds.
        max_size: usize,
    },
}

impl BatchPolicy {
    /// The batch-size cap.
    pub fn max_size(&self) -> usize {
        match *self {
            BatchPolicy::SizeOrWait { max_size, .. } | BatchPolicy::Greedy { max_size } => max_size,
        }
    }

    /// Should an idle server open a batch, given `queued` waiting
    /// requests whose oldest has waited `oldest_wait`?
    pub fn ready(&self, queued: usize, oldest_wait: f64) -> bool {
        if queued == 0 {
            return false;
        }
        match *self {
            BatchPolicy::SizeOrWait { max_size, max_wait } => {
                queued >= max_size || oldest_wait >= max_wait
            }
            BatchPolicy::Greedy { .. } => true,
        }
    }

    fn validate(&self) {
        assert!(self.max_size() >= 1, "batch size cap must be >= 1");
        if let BatchPolicy::SizeOrWait { max_wait, .. } = *self {
            assert!(
                max_wait >= 0.0 && max_wait.is_finite(),
                "max_wait must be finite and >= 0"
            );
        }
    }
}

/// Configuration of one [`InferenceEngine::run_serving`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Seeded arrival process generating request timestamps (rates are in
    /// requests per virtual second — calibrate against
    /// [`InferenceEngine::probe_step_time`]).
    pub arrival: ArrivalProcess,
    /// Requests to serve.
    pub n_requests: usize,
    /// Tokens each request generates (decode steps it occupies a batch
    /// slot for).
    pub decode_steps: usize,
    /// Batch-assembly policy.
    pub batch: BatchPolicy,
    /// Length of one serving window in virtual seconds: drift checks and
    /// re-plans happen when the clock crosses window boundaries, mirroring
    /// the windowed online mode's cadence.
    pub window_duration: f64,
}

impl ServingConfig {
    fn validate(&self) {
        // `n_requests == 0` is a valid (idle) run: it reports zero
        // latencies, zero goodput, and still processes fault events.
        assert!(self.decode_steps >= 1, "need at least one decode step");
        assert!(
            self.window_duration > 0.0 && self.window_duration.is_finite(),
            "window duration must be positive and finite"
        );
        self.batch.validate();
    }
}

/// One request's lifecycle state inside the event loop.
struct Request {
    arrival: f64,
    domain: usize,
    /// `routes[step][layer]` = gated experts of the token this request
    /// generates at `step`.
    routes: Vec<Vec<Vec<u16>>>,
    steps_done: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// Request `i` joins the queue.
    Arrival(usize),
    /// Request `i`'s `max_wait` expired (no-op if it already started).
    WaitDeadline(usize),
    /// The in-flight batch finished its current decode step.
    StepDone,
    /// Fleet event `i` of the fault schedule fired (GPU loss or rejoin).
    Fleet(usize),
}

/// Event-queue entry: ordered by `(time, seq)` — total-order float
/// comparison, then insertion sequence — so the pop order is a pure
/// function of the pushes.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Min-heap of events with a monotone insertion sequence for ties.
struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
}

impl EventQueue {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

impl InferenceEngine {
    /// Virtual time of one full-occupancy decode step: a single batch of
    /// `batch_size` tokens through `mode`'s placement at prompt-length
    /// context. Serving scenarios calibrate arrival rates and batch waits
    /// against this (e.g. an offered load of `0.8 * batch_size /
    /// (decode_steps * probe)` requests per virtual second keeps a
    /// size-`batch_size` server at 80% utilization).
    pub fn probe_step_time(&self, mode: ParallelismMode, batch_size: usize) -> f64 {
        assert!(batch_size >= 1, "probe batch must hold at least one token");
        let cfg = self.config();
        let batch = TokenBatch::sample(
            self.routing(),
            &cfg.corpus,
            batch_size,
            cfg.model.gate.k(),
            cfg.seed ^ 0x5e_41_9e,
        );
        let no_replicas = vec![Vec::new(); cfg.model.n_layers];
        self.run_with_batches(
            mode,
            self.placement_for(mode),
            &no_replicas,
            &[batch],
            0,
            None,
        )
        .total_time
    }

    /// Serve `serving.n_requests` requests arriving per
    /// `serving.arrival` under continuous batching, interleaving the
    /// online mode's drift-triggered budgeted re-placement with serving
    /// time. See the [module docs](crate::serving) for the event-loop
    /// semantics; the result is bit-identical at any thread width.
    #[deprecated(
        note = "use `run_scenario(&Scenario::offline(mode).with_drift(drift).with_serving(serving))`"
    )]
    pub fn run_serving(
        &self,
        mode: ParallelismMode,
        drift: &DriftSchedule,
        serving: &ServingConfig,
    ) -> ServingReport {
        let w = self.config().cluster.world_size();
        self.run_serving_impl(mode, drift, serving, &FaultSchedule::none(w), None)
    }

    /// One request-level serving run (the `run_scenario` serving path):
    /// the deprecated [`InferenceEngine::run_serving`] contract plus a
    /// fault schedule and an optional starting replication plan (the
    /// replicas emergency failover draws on).
    pub(crate) fn run_serving_impl(
        &self,
        mode: ParallelismMode,
        drift: &DriftSchedule,
        serving: &ServingConfig,
        faults: &FaultSchedule,
        initial: Option<&ReplicationPlan>,
    ) -> ServingReport {
        serving.validate();
        let cfg = self.config();
        let oc = cfg.online;
        let e = cfg.model.n_experts;
        let w = cfg.cluster.world_size();
        assert_eq!(
            faults.n_units(),
            w,
            "fault schedule must cover the provisioned fleet"
        );
        let shape = drift.model_at(0);
        assert_eq!(shape.n_layers(), cfg.model.n_layers, "drift layer mismatch");
        assert_eq!(shape.n_experts(), e, "drift expert mismatch");
        assert_eq!(
            shape.n_domains(),
            cfg.corpus.domain_weights.len(),
            "drift domain mismatch"
        );

        let n = serving.n_requests;
        let max_size = serving.batch.max_size();
        let window_of = |t: f64| -> usize {
            ((t / serving.window_duration) as usize).min(drift.n_windows() - 1)
        };

        // Seeded traffic: arrival timestamps from the arrival process,
        // then each request's domain and full decode route from the
        // routing model of the window it arrives in (its own seed stream,
        // disjoint from profiling and from the windowed mode's).
        let arrivals = serving.arrival.sample(n, cfg.seed ^ 0xac71_0e55);
        let k = cfg.model.gate.k();
        let mut requests: Vec<Request> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5e59,
                );
                let model = drift.model_at(window_of(t));
                let domain = cfg.corpus.sample_domain(&mut rng);
                let routes = (0..serving.decode_steps)
                    .map(|_| model.sample_route(&mut rng, domain, k))
                    .collect();
                Request {
                    arrival: t,
                    domain,
                    routes,
                    steps_done: 0,
                }
            })
            .collect();

        // Streaming estimator and re-plan state, exactly as the windowed
        // online loop seeds them; an explicit starting replication plan
        // (the [`Scenario`](crate::scenario::Scenario) front door's
        // `with_replication`) overrides the engine-chosen placement.
        let mut streaming = StreamingAffinity::new(cfg.model.n_layers, e, oc.decay);
        streaming.observe(self.profile_trace());
        let mut reference = streaming.snapshot();
        // The incremental re-plan state (delta-maintained objective plus
        // persistent swap-gain cache) rides across every window boundary,
        // exactly as in the windowed loop.
        let mut replan_state = self.replan_state(&reference);
        let (mut placement, mut replicated): (Placement, Vec<LayerReplicas>) = match initial {
            Some(plan) => (plan.base.clone(), plan.replicas.clone()),
            None => (
                self.placement_for(mode).clone(),
                vec![Vec::new(); cfg.model.n_layers],
            ),
        };
        let mut carry = 0u64;
        let mut cur_window = 0usize;
        let mut pending_paths: Vec<Vec<u16>> = Vec::new();
        let mut drifts = Vec::new();
        let mut replans = Vec::new();
        let mut migrations = MigrationStats::default();

        // Event loop state.
        let mut events = EventQueue::new();
        for (i, &t) in arrivals.iter().enumerate() {
            events.push(t, EventKind::Arrival(i));
        }
        for (i, ev) in faults.events().iter().enumerate() {
            events.push(ev.time, EventKind::Fleet(i));
        }
        // Fleet state: which GPUs are up, the emergency-restore horizon
        // (steps before it share links with a restore copy), and which
        // live rank each in-flight slot was homed on when the current
        // step started (mirrors `run_with_batches` token homing, so a
        // loss disrupts exactly the requests the dead GPU was serving).
        let mut live_mask = vec![true; w];
        let mut emergency_until = 0.0f64;
        let mut step_live: Vec<usize> = (0..w).collect();
        let mut disruption = DisruptionStats::default();
        let mut completions: Vec<(f64, f64)> = Vec::with_capacity(n);
        let bytes_per_expert = (cfg.model.expert_params() * 2).max(1);
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut in_flight: Vec<usize> = Vec::new();
        let mut stepping = false;
        // An in-flight background weight copy: `(lands_at, placement,
        // replicas)` — the *stale* plan steps keep using until the copy
        // completes. `placement`/`replicated` already hold the new plan.
        let mut copying: Option<(f64, Placement, Vec<LayerReplicas>)> = None;
        let mut latencies: Vec<f64> = Vec::with_capacity(n);
        let mut makespan = 0.0f64;
        let mut queue_depth: Vec<(f64, usize)> = Vec::new();
        let mut occupancy = vec![0u64; max_size + 1];
        let mut steps = 0u64;
        let mut busy = 0.0f64;
        let mut dispatch = DispatchStats::default();

        while let Some(ev) = events.pop() {
            let clock = ev.time;
            match ev.kind {
                EventKind::Arrival(i) => {
                    queue.push_back(i);
                    queue_depth.push((clock, queue.len()));
                    if let BatchPolicy::SizeOrWait { max_wait, .. } = serving.batch {
                        events.push(clock + max_wait, EventKind::WaitDeadline(i));
                    }
                }
                // Deadlines carry no state of their own; they exist to
                // re-run the batch-opening check below.
                EventKind::WaitDeadline(_) => {}
                EventKind::StepDone => {
                    stepping = false;
                    // Completions and per-step realized paths.
                    let mut still = Vec::with_capacity(in_flight.len());
                    for &i in &in_flight {
                        let req = &mut requests[i];
                        let path = req.routes[req.steps_done]
                            .iter()
                            .map(|slots| slots[0])
                            .collect();
                        pending_paths.push(path);
                        req.steps_done += 1;
                        if req.steps_done == serving.decode_steps {
                            latencies.push(clock - req.arrival);
                            completions.push((clock, clock - req.arrival));
                            makespan = makespan.max(clock);
                        } else {
                            still.push(i);
                        }
                    }
                    in_flight = still;

                    // Window boundaries crossed while this step ran: fold
                    // the accumulated paths into the estimate once, then
                    // evaluate each ended window's drift/re-plan exactly
                    // as the windowed loop would.
                    let wnow = window_of(clock);
                    if wnow > cur_window && !pending_paths.is_empty() {
                        let delta = streaming.observe_delta(&RoutingTrace::new(
                            std::mem::take(&mut pending_paths),
                            e,
                        ));
                        replan_state.absorb(&delta);
                    }
                    while cur_window < wnow {
                        let ended = cur_window;
                        cur_window += 1;
                        let drift_now = streaming.divergence(&reference);
                        drifts.push(drift_now);
                        let due = (ended + 1).is_multiple_of(oc.replan_every)
                            && ended + 1 < drift.n_windows();
                        if due && drift_now > oc.drift_threshold && mode.uses_affinity() {
                            let stale = (placement.clone(), replicated.clone());
                            if let Some(exec) = self.replan_step(
                                mode,
                                drift_now,
                                &mut replan_state,
                                &mut placement,
                                &mut replicated,
                                &mut carry,
                            ) {
                                // A re-plan landing mid-outage may have
                                // picked replica targets on dead GPUs;
                                // those copies cannot exist (the shipped
                                // bytes were still charged — a documented
                                // overcharge).
                                if live_mask.iter().any(|&up| !up) {
                                    for lr in replicated.iter_mut() {
                                        for (_, units) in lr.iter_mut() {
                                            units.retain(|&u| live_mask[u]);
                                        }
                                        lr.retain(|(_, units)| !units.is_empty());
                                    }
                                }
                                // The weight exchange streams in the
                                // background: steps keep running on the
                                // stale plan (with link contention) and
                                // the new plan activates when the copy
                                // lands. A copy still in flight keeps its
                                // stale plan active and queues this one
                                // behind it.
                                let (start, sp, sr) = match copying.take() {
                                    Some((done, sp, sr)) if done > clock => (done, sp, sr),
                                    _ => (clock, stale.0, stale.1),
                                };
                                copying = Some((start + exec.migration_time, sp, sr));
                                migrations.absorb(&exec);
                                replans.push(exec.event(ended, drift_now));
                            }
                            reference = streaming.snapshot();
                        }
                    }
                }
                EventKind::Fleet(fi) => {
                    let fev = faults.events()[fi];
                    match fev.kind {
                        FaultKind::Down => {
                            live_mask[fev.gpu] = false;
                            disruption.faults.push(FaultMarker {
                                time: clock,
                                gpu: fev.gpu,
                                up: false,
                            });
                            // Requests the dead GPU was serving lose their
                            // in-progress step: back to the front of the
                            // queue (oldest first), step not counted.
                            if stepping {
                                let nl_step = step_live.len();
                                let mut keep = Vec::with_capacity(in_flight.len());
                                let mut lost = Vec::new();
                                for (j, &i) in in_flight.iter().enumerate() {
                                    if step_live[j % nl_step] == fev.gpu {
                                        lost.push(i);
                                    } else {
                                        keep.push(i);
                                    }
                                }
                                disruption.requests_disrupted += lost.len() as u64;
                                for &i in lost.iter().rev() {
                                    queue.push_front(i);
                                }
                                if let BatchPolicy::SizeOrWait { max_wait, .. } = serving.batch {
                                    for &i in &lost {
                                        events.push(clock + max_wait, EventKind::WaitDeadline(i));
                                    }
                                }
                                in_flight = keep;
                                queue_depth.push((clock, queue.len()));
                            }
                            // Evacuate the dead GPU's experts onto the
                            // survivors: where the replica subset still
                            // holds a live copy, the least-loaded holder
                            // is *promoted* to owner for free (failover);
                            // an expert whose only copies just died needs
                            // a priced emergency restore from a surviving
                            // checkpoint shard. The evacuated placement
                            // activates *immediately* — steps must not
                            // route to a dead GPU — so any in-flight
                            // background copy (whose stale plan may still
                            // route there) is cancelled.
                            let live_ranks: Vec<usize> = live_mask
                                .iter()
                                .enumerate()
                                .filter_map(|(r, &up)| up.then_some(r))
                                .collect();
                            // The dead GPU's replica copies are gone too:
                            // strip it from every subset before failover
                            // consults them.
                            for lr in replicated.iter_mut() {
                                for (_, units) in lr.iter_mut() {
                                    units.retain(|&u| u != fev.gpu);
                                }
                                lr.retain(|(_, units)| !units.is_empty());
                            }
                            let nl = cfg.model.n_layers;
                            let mut assign: Vec<Vec<usize>> = (0..nl)
                                .map(|l| (0..e).map(|x| placement.unit_of(l, x)).collect())
                                .collect();
                            let mut moves = Vec::new();
                            let mut free_moves = Vec::new();
                            for (l, row) in assign.iter_mut().enumerate() {
                                let mut load = vec![0usize; w];
                                for &u in row.iter() {
                                    load[u] += 1;
                                }
                                for x in 0..e {
                                    if row[x] != fev.gpu {
                                        continue;
                                    }
                                    let holder = replicated[l]
                                        .binary_search_by_key(&x, |r| r.0)
                                        .ok()
                                        .and_then(|i| {
                                            replicated[l][i]
                                                .1
                                                .iter()
                                                .copied()
                                                .min_by_key(|&r| (load[r], r))
                                        });
                                    load[fev.gpu] -= 1;
                                    match holder {
                                        Some(dst) => {
                                            // A surviving holder already has
                                            // the weights: promote it to
                                            // owner and retire its subset
                                            // membership.
                                            load[dst] += 1;
                                            row[x] = dst;
                                            free_moves.push(ExpertMove {
                                                layer: l,
                                                expert: x,
                                                from: fev.gpu,
                                                to: dst,
                                            });
                                            let i = replicated[l]
                                                .iter()
                                                .position(|r| r.0 == x)
                                                .expect("holder came from this entry");
                                            replicated[l][i].1.retain(|&u| u != dst);
                                            if replicated[l][i].1.is_empty() {
                                                replicated[l].remove(i);
                                            }
                                        }
                                        None => {
                                            let &dst = live_ranks
                                                .iter()
                                                .min_by_key(|&&r| (load[r], r))
                                                .expect("at least one live GPU");
                                            load[dst] += 1;
                                            row[x] = dst;
                                            // Deterministic surviving source
                                            // of the restore copy (a
                                            // checkpoint shard, not the dead
                                            // GPU).
                                            let src = live_ranks[(l + x) % live_ranks.len()];
                                            moves.push(ExpertMove {
                                                layer: l,
                                                expert: x,
                                                from: src,
                                                to: dst,
                                            });
                                        }
                                    }
                                }
                            }
                            copying = None;
                            placement = Placement::new_degraded(assign, w);
                            let plan = MigrationPlan {
                                bytes_per_expert,
                                moves,
                                free_moves,
                                replica_adds: Vec::new(),
                                replica_drops: Vec::new(),
                            };
                            if !plan.is_empty() {
                                let (time, _) = self.execute_migrations(&plan);
                                // Restores are mandatory: the byte budget
                                // is whatever the evacuation needs, and the
                                // copy overlaps serving (steps before
                                // `emergency_until` pay link contention).
                                let start = if emergency_until > clock {
                                    emergency_until
                                } else {
                                    clock
                                };
                                emergency_until = start + time;
                                disruption.emergency_replans += 1;
                                disruption.emergency_bytes += plan.total_bytes();
                            }
                        }
                        FaultKind::Up => {
                            live_mask[fev.gpu] = true;
                            disruption.faults.push(FaultMarker {
                                time: clock,
                                gpu: fev.gpu,
                                up: true,
                            });
                            // Re-home a fair share of each layer's experts
                            // back onto the rejoined GPU, pulling from the
                            // most-loaded survivors (lowest expert index
                            // first). Unlike a loss, nothing is on fire:
                            // the copy streams in the background through
                            // the same stale-plan mechanism a drift
                            // re-plan uses.
                            let stale = (placement.clone(), replicated.clone());
                            let nl = cfg.model.n_layers;
                            let mut assign: Vec<Vec<usize>> = (0..nl)
                                .map(|l| (0..e).map(|x| placement.unit_of(l, x)).collect())
                                .collect();
                            let mut moves = Vec::new();
                            for (l, row) in assign.iter_mut().enumerate() {
                                let mut load = vec![0usize; w];
                                for &u in row.iter() {
                                    load[u] += 1;
                                }
                                let target = e / w;
                                while load[fev.gpu] < target {
                                    let src = (0..w)
                                        .filter(|&r| r != fev.gpu && load[r] > 0)
                                        .min_by_key(|&r| (std::cmp::Reverse(load[r]), r))
                                        .expect("survivors hold every expert");
                                    let x = (0..e)
                                        .find(|&x| row[x] == src)
                                        .expect("loaded unit owns an expert");
                                    row[x] = fev.gpu;
                                    load[src] -= 1;
                                    load[fev.gpu] += 1;
                                    moves.push(ExpertMove {
                                        layer: l,
                                        expert: x,
                                        from: src,
                                        to: fev.gpu,
                                    });
                                }
                            }
                            placement = Placement::new_degraded(assign, w);
                            let plan = MigrationPlan {
                                bytes_per_expert,
                                moves,
                                free_moves: Vec::new(),
                                replica_adds: Vec::new(),
                                replica_drops: Vec::new(),
                            };
                            if !plan.is_empty() {
                                let (time, _) = self.execute_migrations(&plan);
                                let (start, sp, sr) = match copying.take() {
                                    Some((done, sp, sr)) if done > clock => (done, sp, sr),
                                    _ => (clock, stale.0, stale.1),
                                };
                                copying = Some((start + time, sp, sr));
                                disruption.emergency_replans += 1;
                                disruption.emergency_bytes += plan.total_bytes();
                            }
                        }
                    }
                }
            }

            // After every event: try to open/continue a batch.
            if stepping {
                continue;
            }
            if in_flight.is_empty() {
                // Opening a fresh batch is the policy's call.
                match queue.front() {
                    None => continue,
                    Some(&head) => {
                        let oldest_wait = clock - requests[head].arrival;
                        if !serving.batch.ready(queue.len(), oldest_wait) {
                            continue;
                        }
                    }
                }
            }
            // Continuous batching: top the pool up to the cap.
            while in_flight.len() < max_size {
                match queue.pop_front() {
                    Some(i) => in_flight.push(i),
                    None => break,
                }
            }
            queue_depth.push((clock, queue.len()));

            // One decode step of the pool through the engine: each
            // in-flight request contributes the token of its current step.
            let batch = TokenBatch {
                routes: in_flight
                    .iter()
                    .map(|&i| requests[i].routes[requests[i].steps_done].clone())
                    .collect(),
                domains: in_flight.iter().map(|&i| requests[i].domain).collect(),
            };
            let ctx_offset = in_flight
                .iter()
                .map(|&i| requests[i].steps_done)
                .max()
                .unwrap_or(0);
            if let Some((done, _, _)) = &copying {
                if clock >= *done {
                    copying = None;
                }
            }
            let (active_p, active_r) = match &copying {
                Some((_, sp, sr)) => (sp, sr),
                None => (&placement, &replicated),
            };
            // Dead ranks stay in the collectives with empty payloads
            // (bit-identical clocks at any thread width); the all-live
            // mask is elided so fault-free runs take the exact code path
            // they always did.
            let any_dead = live_mask.iter().any(|&up| !up);
            let report = self.run_with_batches(
                mode,
                active_p,
                active_r,
                &[batch],
                ctx_offset,
                if any_dead { Some(&live_mask) } else { None },
            );
            // A background copy — drift re-plan or emergency restore —
            // shares links with the step; the surcharge does not stack.
            let degraded = clock < emergency_until;
            let step_time = if copying.is_some() || degraded {
                report.total_time * (1.0 + MIGRATION_CONTENTION)
            } else {
                report.total_time
            };
            if degraded {
                disruption.steps_degraded += 1;
            }
            step_live = live_mask
                .iter()
                .enumerate()
                .filter_map(|(r, &up)| up.then_some(r))
                .collect();
            occupancy[in_flight.len()] += 1;
            steps += 1;
            busy += step_time;
            dispatch.merge(&report.dispatch);
            stepping = true;
            events.push(clock + step_time, EventKind::StepDone);
        }

        debug_assert_eq!(latencies.len(), n, "every request must complete");
        latencies.sort_by(f64::total_cmp);
        let last_arrival = arrivals.last().copied().unwrap_or(0.0);
        let offered_load = if last_arrival > 0.0 {
            n as f64 / last_arrival
        } else if n > 0 {
            f64::INFINITY
        } else {
            // An idle (0-request) run offered nothing.
            0.0
        };

        ServingReport {
            mode,
            latencies,
            offered_load,
            makespan,
            queue_depth,
            batch_occupancy: occupancy,
            steps,
            busy,
            dispatch,
            drift: drifts,
            replans,
            migrations,
            completions,
            disruption,
            window_duration: serving.window_duration,
        }
    }
}

#[cfg(test)]
// These unit tests pin the legacy `run_serving` entry point (now a thin
// wrapper over the `Scenario` dispatch) until the wrapper is removed;
// `scenario::tests` proves wrapper/scenario parity.
#[allow(deprecated)]
mod tests {
    use super::*;
    use exflow_model::presets::moe_gpt_m;
    use exflow_topology::ClusterSpec;

    use crate::engine::OnlineConfig;

    fn engine(online: OnlineConfig) -> InferenceEngine {
        let mut model = moe_gpt_m(8);
        model.n_layers = 4;
        InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
            .requests_per_gpu(8)
            .prompt_len(8)
            .profile_tokens(800)
            .online(online)
            .seed(11)
            .build()
    }

    fn adaptive() -> OnlineConfig {
        OnlineConfig {
            replan_every: 1,
            drift_threshold: 0.08,
            migration_budget_bytes: u64::MAX,
            decay: 0.3,
            ..OnlineConfig::default()
        }
    }

    fn static_cfg() -> OnlineConfig {
        OnlineConfig {
            drift_threshold: f64::INFINITY,
            decay: 0.3,
            ..OnlineConfig::default()
        }
    }

    fn scenario(e: &InferenceEngine, mode: ParallelismMode) -> (DriftSchedule, ServingConfig) {
        let schedule = DriftSchedule::piecewise(&e.config().routing_spec, 2, 6);
        let step = e.probe_step_time(mode, 8);
        assert!(step > 0.0);
        let n_requests = 40;
        let decode_steps = 2;
        let rate = 0.8 * 8.0 / (decode_steps as f64 * step);
        let horizon = n_requests as f64 / rate;
        let cfg = ServingConfig {
            arrival: ArrivalProcess::poisson(rate),
            n_requests,
            decode_steps,
            batch: BatchPolicy::SizeOrWait {
                max_size: 8,
                max_wait: 2.0 * step,
            },
            window_duration: horizon / 6.0,
        };
        (schedule, cfg)
    }

    #[test]
    fn serves_every_request_and_reports_sane_metrics() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(adaptive());
        let (schedule, cfg) = scenario(&eng, mode);
        let r = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(r.n_requests(), cfg.n_requests);
        assert!(r.latencies.iter().all(|&l| l > 0.0));
        assert!(r.p50() <= r.p95() && r.p95() <= r.p99());
        assert!(r.goodput() > 0.0);
        assert!(r.goodput() <= r.offered_load);
        assert!(r.makespan > 0.0);
        assert!(r.steps > 0);
        // Step count is bounded by the one-token-per-request-per-step
        // arithmetic.
        let total_tokens = (cfg.n_requests * cfg.decode_steps) as u64;
        assert!(r.steps >= total_tokens / 8);
        assert!(r.steps <= total_tokens);
        assert_eq!(
            r.batch_occupancy.iter().sum::<u64>(),
            r.steps,
            "every step lands in the occupancy histogram"
        );
        assert_eq!(r.batch_occupancy[0], 0, "no empty batches");
        assert!(r.mean_batch_occupancy() > 1.0);
        assert_eq!(
            r.batch_occupancy
                .iter()
                .enumerate()
                .map(|(s, &c)| s as u64 * c)
                .sum::<u64>(),
            total_tokens,
            "occupancy-weighted steps account for every token"
        );
    }

    #[test]
    fn serving_is_deterministic() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(adaptive());
        let (schedule, cfg) = scenario(&eng, mode);
        let a = eng.run_serving(mode, &schedule, &cfg);
        let b = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn drifted_traffic_triggers_replans_that_overlap_with_serving() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(adaptive());
        let (schedule, cfg) = scenario(&eng, mode);
        let r = eng.run_serving(mode, &schedule, &cfg);
        assert!(
            r.migrations.replans > 0,
            "piecewise drift must fire at least one re-plan"
        );
        assert!(r.migrations.time > 0.0);
        assert!(!r.drift.is_empty());
        assert!(r.replans.iter().all(|ev| ev.bytes_moved <= ev.budget_bytes));
    }

    #[test]
    fn static_baseline_never_replans() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, cfg) = scenario(&eng, mode);
        let r = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(r.migrations.replans, 0);
        assert!(r.replans.is_empty());
        assert_eq!(r.n_requests(), cfg.n_requests);
    }

    #[test]
    fn greedy_policy_trades_occupancy_for_queueing() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, mut cfg) = scenario(&eng, mode);
        let waited = eng.run_serving(mode, &schedule, &cfg);
        cfg.batch = BatchPolicy::Greedy { max_size: 8 };
        let greedy = eng.run_serving(mode, &schedule, &cfg);
        assert_eq!(greedy.n_requests(), cfg.n_requests);
        // Greedy opens batches earlier, so it can only run more (or
        // equally many) steps at lower (or equal) mean occupancy.
        assert!(greedy.steps >= waited.steps);
        assert!(greedy.mean_batch_occupancy() <= waited.mean_batch_occupancy());
    }

    #[test]
    fn probe_step_time_grows_with_batch_size() {
        let eng = engine(static_cfg());
        let mode = ParallelismMode::ContextCoherentAffinity;
        let small = eng.probe_step_time(mode, 2);
        let large = eng.probe_step_time(mode, 32);
        assert!(small > 0.0);
        assert!(
            large > small,
            "bigger batches must cost more: {small} vs {large}"
        );
    }

    fn faulted(
        e: &InferenceEngine,
        mode: ParallelismMode,
        faults: &FaultSchedule,
        initial: Option<&ReplicationPlan>,
    ) -> ServingReport {
        let (schedule, cfg) = scenario(e, mode);
        e.run_serving_impl(mode, &schedule, &cfg, faults, initial)
    }

    #[test]
    fn gpu_loss_disrupts_then_every_request_still_completes() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, cfg) = scenario(&eng, mode);
        // Strike mid-run: about half the horizon in.
        let horizon = cfg.window_duration * 6.0;
        let faults = FaultSchedule::gpu_loss(4, 1, 0.5 * horizon);
        let r = eng.run_serving_impl(mode, &schedule, &cfg, &faults, None);
        assert_eq!(r.n_requests(), cfg.n_requests, "no request may be lost");
        assert_eq!(r.completions.len(), cfg.n_requests);
        assert_eq!(r.disruption.faults.len(), 1);
        assert!(!r.disruption.faults[0].up);
        assert_eq!(r.disruption.faults[0].gpu, 1);
        // No replicas: the evacuation is a priced emergency restore.
        assert_eq!(r.disruption.emergency_replans, 1);
        assert!(r.disruption.emergency_bytes > 0);
        assert!(r.disruption.steps_degraded > 0);
        assert!(r.pre_fault_p99().is_some());
        // The fault-free run is strictly different (and no slower).
        let clean = faulted(&eng, mode, &FaultSchedule::none(4), None);
        assert!(clean.disruption.emergency_replans == 0);
        assert!(clean.makespan <= r.makespan);
    }

    #[test]
    fn full_replication_makes_failover_free() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, cfg) = scenario(&eng, mode);
        let horizon = cfg.window_duration * 6.0;
        let faults = FaultSchedule::gpu_loss(4, 1, 0.5 * horizon);
        // Every expert of every layer replicated on every GPU: a loss
        // fails over without copying a single byte.
        let plan =
            ReplicationPlan::everywhere(eng.placement_for(mode).clone(), vec![(0..8).collect(); 4]);
        let r = eng.run_serving_impl(mode, &schedule, &cfg, &faults, Some(&plan));
        assert_eq!(r.n_requests(), cfg.n_requests);
        assert_eq!(r.disruption.emergency_replans, 1);
        assert_eq!(
            r.disruption.emergency_bytes, 0,
            "replica failover must not ship weights"
        );
    }

    #[test]
    fn rejoin_rehomes_and_is_recorded() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, cfg) = scenario(&eng, mode);
        let horizon = cfg.window_duration * 6.0;
        let faults = FaultSchedule::loss_and_rejoin(4, 2, 0.3 * horizon, 0.6 * horizon);
        let r = eng.run_serving_impl(mode, &schedule, &cfg, &faults, None);
        assert_eq!(r.n_requests(), cfg.n_requests);
        assert_eq!(r.disruption.faults.len(), 2);
        assert!(r.disruption.faults[1].up);
        // Loss evacuation + rejoin re-home both moved experts.
        assert_eq!(r.disruption.emergency_replans, 2);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(adaptive());
        let faults = FaultSchedule::loss_and_rejoin(4, 1, 2.0, 4.0);
        let a = faulted(&eng, mode, &faults, None);
        let b = faulted(&eng, mode, &faults, None);
        assert_eq!(a, b);
    }

    #[test]
    fn fault_on_an_idle_server_is_handled() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let schedule = DriftSchedule::piecewise(&eng.config().routing_spec, 2, 6);
        let cfg = ServingConfig {
            arrival: ArrivalProcess::poisson(1.0),
            n_requests: 0,
            decode_steps: 1,
            batch: BatchPolicy::Greedy { max_size: 4 },
            window_duration: 1.0,
        };
        let faults = FaultSchedule::loss_and_rejoin(4, 3, 0.5, 2.5);
        let r = eng.run_serving_impl(mode, &schedule, &cfg, &faults, None);
        assert_eq!(r.n_requests(), 0);
        assert_eq!(r.disruption.requests_disrupted, 0);
        assert_eq!(r.disruption.faults.len(), 2);
        assert_eq!(r.disruption.emergency_replans, 2);
        // Degenerate metrics stay defined.
        assert_eq!(r.p50(), 0.0);
        assert_eq!(r.p99(), 0.0);
        assert_eq!(r.goodput(), 0.0);
        assert_eq!(r.offered_load, 0.0);
        assert!(r.pre_fault_p99().is_none());
        assert!(r.recovery_time().is_none());
    }

    #[test]
    #[should_panic(expected = "fault schedule must cover")]
    fn fleet_size_mismatch_is_rejected() {
        let mode = ParallelismMode::ContextCoherentAffinity;
        let eng = engine(static_cfg());
        let (schedule, cfg) = scenario(&eng, mode);
        let faults = FaultSchedule::gpu_loss(8, 1, 1.0);
        let _ = eng.run_serving_impl(mode, &schedule, &cfg, &faults, None);
    }

    #[test]
    #[should_panic(expected = "window duration")]
    fn zero_window_duration_is_rejected() {
        let eng = engine(static_cfg());
        let schedule = DriftSchedule::piecewise(&eng.config().routing_spec, 2, 6);
        let cfg = ServingConfig {
            arrival: ArrivalProcess::poisson(1.0),
            n_requests: 1,
            decode_steps: 1,
            batch: BatchPolicy::Greedy { max_size: 1 },
            window_duration: 0.0,
        };
        let _ = eng.run_serving(ParallelismMode::Vanilla, &schedule, &cfg);
    }
}
