//! Analytic communication-volume model — the paper's Table I.
//!
//! Table I compares the *forward communication volume* of FasterMoE,
//! TA-MoE, DeepSpeed-MoE, and ExFlow as closed-form expressions in
//! `G` (GPUs), `N` (tokens per GPU), `L` (MoE layers) and the fraction of
//! tokens that actually cross GPUs (`p` for affinity-unaware systems,
//! `p_topo` under topology-aware gating, `p*` under ExFlow's affinity
//! placement). This module implements those expressions; the `repro`
//! harness fills in `p`/`p*` measured from engine runs.

/// Parameters of the volume model (one evaluation scenario).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeParams {
    /// GPUs in the expert-parallel group.
    pub g: usize,
    /// Tokens per GPU per iteration.
    pub n: usize,
    /// MoE layers.
    pub l: usize,
}

/// Which system's formula to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// FasterMoE (topology-aware gating; trains with an extra topo loss).
    FasterMoe,
    /// TA-MoE (topology-aware gating).
    TaMoe,
    /// DeepSpeed-MoE (vanilla expert parallelism).
    DeepspeedMoe,
    /// ExFlow (context coherence + affinity placement).
    ExFlow,
}

impl System {
    /// All four Table I rows, top to bottom.
    pub const ALL: [System; 4] = [
        System::FasterMoe,
        System::TaMoe,
        System::DeepspeedMoe,
        System::ExFlow,
    ];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            System::FasterMoe => "FasterMoE",
            System::TaMoe => "TA-MoE",
            System::DeepspeedMoe => "Deepspeed-MoE",
            System::ExFlow => "ExFlow",
        }
    }

    /// Whether the system is applicable at inference time without
    /// retraining (Table I's last column): topology-aware gating bakes the
    /// training cluster's shape into the gate, so it does not transfer.
    pub fn applicable_in_inference(self) -> bool {
        matches!(self, System::DeepspeedMoe | System::ExFlow)
    }

    /// Whether the system needs extra memory (expert replicas / gate
    /// state) beyond the balanced placement.
    pub fn extra_memory(self) -> bool {
        matches!(self, System::FasterMoe | System::ExFlow)
    }

    /// Forward communication volume in token-units for top-`k` gating,
    /// with `p` the system-appropriate cross-GPU routing fraction
    /// (`p_topo` for the topo-aware rows, plain `p` for DeepSpeed, `p*`
    /// for ExFlow).
    ///
    /// * Topo-aware / DeepSpeed: `k · 2 · G · N · L · p` — two Alltoalls
    ///   per layer, each moving the crossing fraction of all `G·N` tokens.
    /// * ExFlow: `G · N · (k · L · p* + G)` — one Alltoall per layer at the
    ///   (much smaller) `p*`, plus the per-iteration AllGather whose ring
    ///   forwards each contribution `G` times.
    pub fn volume(self, params: VolumeParams, p: f64, k: usize) -> f64 {
        let g = params.g as f64;
        let n = params.n as f64;
        let l = params.l as f64;
        let k = k as f64;
        match self {
            System::FasterMoe | System::TaMoe | System::DeepspeedMoe => k * 2.0 * g * n * l * p,
            System::ExFlow => g * n * (k * l * p + g),
        }
    }
}

/// The expected cross-GPU fraction under affinity-free uniform routing:
/// a token's expert is on any of `G` GPUs with equal probability, so
/// `p = 1 - 1/G`.
pub fn uniform_crossing_fraction(g: usize) -> f64 {
    1.0 - 1.0 / g as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARAMS: VolumeParams = VolumeParams {
        g: 16,
        n: 64,
        l: 24,
    };

    #[test]
    fn deepspeed_doubles_topo_aware_only_via_p() {
        // Same formula shape; difference is the p they achieve.
        let p = 0.9;
        let p_topo = 0.6;
        let ds = System::DeepspeedMoe.volume(PARAMS, p, 1);
        let fm = System::FasterMoe.volume(PARAMS, p_topo, 1);
        assert!(fm < ds);
        assert_eq!(
            System::FasterMoe.volume(PARAMS, p, 1),
            System::DeepspeedMoe.volume(PARAMS, p, 1)
        );
    }

    #[test]
    fn top2_doubles_alltoall_terms() {
        let p = 0.8;
        assert_eq!(
            System::DeepspeedMoe.volume(PARAMS, p, 2),
            2.0 * System::DeepspeedMoe.volume(PARAMS, p, 1)
        );
        // ExFlow's AllGather term does not double.
        let ex1 = System::ExFlow.volume(PARAMS, p, 1);
        let ex2 = System::ExFlow.volume(PARAMS, p, 2);
        assert!(ex2 < 2.0 * ex1);
        assert!(ex2 > ex1);
    }

    #[test]
    fn exflow_wins_when_pstar_is_small() {
        // With L=24 layers the AllGather overhead (G per token) is dwarfed
        // by the saved Alltoall halves whenever p* < p.
        let p = uniform_crossing_fraction(PARAMS.g);
        let p_star = 0.5 * p; // affinity keeps half the tokens local
        let ds = System::DeepspeedMoe.volume(PARAMS, p, 1);
        let ex = System::ExFlow.volume(PARAMS, p_star, 1);
        assert!(ex < ds, "exflow {ex} should beat deepspeed {ds}");
        // With more layers the AllGather term amortizes further ("as the
        // model has more layers, the overhead of AllGather becomes less
        // significant") and the saving approaches the full 4x.
        let deep = VolumeParams { l: 40, ..PARAMS };
        let ds40 = System::DeepspeedMoe.volume(deep, p, 1);
        let ex40 = System::ExFlow.volume(deep, p_star, 1);
        assert!(ex40 < 0.5 * ds40, "exflow {ex40} vs deepspeed {ds40}");
    }

    #[test]
    fn exflow_allgather_term_grows_with_g() {
        let small = VolumeParams { g: 4, n: 64, l: 24 };
        let large = VolumeParams {
            g: 64,
            n: 64,
            l: 24,
        };
        // At p* = 0 only the AllGather term remains: G^2 * N.
        let ex_small = System::ExFlow.volume(small, 0.0, 1);
        let ex_large = System::ExFlow.volume(large, 0.0, 1);
        assert_eq!(ex_small, (4 * 4 * 64) as f64);
        assert_eq!(ex_large, (64 * 64 * 64) as f64);
    }

    #[test]
    fn applicability_flags_match_table1() {
        assert!(!System::FasterMoe.applicable_in_inference());
        assert!(!System::TaMoe.applicable_in_inference());
        assert!(System::DeepspeedMoe.applicable_in_inference());
        assert!(System::ExFlow.applicable_in_inference());
    }

    #[test]
    fn uniform_crossing_fraction_limits() {
        assert_eq!(uniform_crossing_fraction(1), 0.0);
        assert!((uniform_crossing_fraction(4) - 0.75).abs() < 1e-12);
        assert!(uniform_crossing_fraction(64) > 0.98);
    }

    #[test]
    fn labels_unique() {
        let set: std::collections::HashSet<_> = System::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(set.len(), 4);
    }
}
