//! Execution modes: the three systems the paper compares end to end.

/// Which expert-parallel execution strategy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParallelismMode {
    /// DeepSpeed-MoE-style vanilla expert parallelism: round-robin expert
    /// placement, two Alltoalls per MoE layer (dispatch + combine), no
    /// context replication.
    Vanilla,
    /// ExFlow's context-coherent parallelism *without* affinity placement:
    /// one Alltoall per layer, one AllGather per iteration, round-robin
    /// placement (the "ExFlow w/o affinity" series of Fig. 10).
    ContextCoherent,
    /// Full ExFlow: context coherence plus staged affinity placement
    /// (the "ExFlow w. affinity" series).
    ContextCoherentAffinity,
}

impl ParallelismMode {
    /// All modes, in the order the paper's figures list them.
    pub const ALL: [ParallelismMode; 3] = [
        ParallelismMode::Vanilla,
        ParallelismMode::ContextCoherent,
        ParallelismMode::ContextCoherentAffinity,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            ParallelismMode::Vanilla => "Deepspeed (vanilla)",
            ParallelismMode::ContextCoherent => "ExFlow w/o affinity",
            ParallelismMode::ContextCoherentAffinity => "ExFlow w. affinity",
        }
    }

    /// Whether this mode keeps contexts coherent on every GPU.
    pub fn context_coherent(self) -> bool {
        !matches!(self, ParallelismMode::Vanilla)
    }

    /// Whether this mode uses affinity-optimized placement.
    pub fn uses_affinity(self) -> bool {
        matches!(self, ParallelismMode::ContextCoherentAffinity)
    }

    /// Alltoall collectives issued per MoE layer.
    pub fn alltoalls_per_layer(self) -> usize {
        if self.context_coherent() {
            1
        } else {
            2
        }
    }
}

impl std::fmt::Display for ParallelismMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_needs_two_alltoalls() {
        assert_eq!(ParallelismMode::Vanilla.alltoalls_per_layer(), 2);
        assert_eq!(ParallelismMode::ContextCoherent.alltoalls_per_layer(), 1);
        assert_eq!(
            ParallelismMode::ContextCoherentAffinity.alltoalls_per_layer(),
            1
        );
    }

    #[test]
    fn coherence_and_affinity_flags() {
        assert!(!ParallelismMode::Vanilla.context_coherent());
        assert!(ParallelismMode::ContextCoherent.context_coherent());
        assert!(!ParallelismMode::ContextCoherent.uses_affinity());
        assert!(ParallelismMode::ContextCoherentAffinity.uses_affinity());
    }

    #[test]
    fn labels_are_distinct() {
        let set: std::collections::HashSet<_> =
            ParallelismMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(set.len(), 3);
    }
}
