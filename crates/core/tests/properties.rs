//! Property-based tests for the engine layer.

use exflow_core::commvolume::{uniform_crossing_fraction, System, VolumeParams};
use exflow_core::frame::{decode, encode, frame_size, Token};
use proptest::prelude::*;

fn arb_token(dim: usize) -> impl Strategy<Value = Token> {
    (0u32..10_000, 0u32..64, 0u32..8, 0u32..2).prop_map(move |(id, home, domain, slot)| Token {
        id,
        home,
        domain,
        slot,
        emb: (0..dim).map(|i| (id as f32) * 0.01 + i as f32).collect(),
    })
}

proptest! {
    #[test]
    fn frames_round_trip(
        tokens in proptest::collection::vec(arb_token(8), 0..20),
        width in 0u64..4096,
    ) {
        let frame = frame_size(width, 8);
        let buf = encode(&tokens, frame);
        prop_assert_eq!(buf.len(), tokens.len() * frame);
        prop_assert_eq!(decode(&buf, frame), tokens);
    }

    #[test]
    fn frame_size_honors_both_bounds(width in 0u64..1_000_000, dim in 0usize..256) {
        let f = frame_size(width, dim);
        prop_assert!(f >= width as usize);
        prop_assert!(f >= 20 + 4 * dim);
    }

    #[test]
    fn volumes_scale_linearly_in_n(
        g in 2usize..64,
        n in 1usize..512,
        l in 1usize..48,
        p in 0.0f64..1.0,
    ) {
        let a = VolumeParams { g, n, l };
        let b = VolumeParams { g, n: n * 2, l };
        for system in System::ALL {
            let va = system.volume(a, p, 1);
            let vb = system.volume(b, p, 1);
            prop_assert!((vb - 2.0 * va).abs() < 1e-6, "{:?}", system);
        }
    }

    #[test]
    fn volumes_monotone_in_p(
        g in 2usize..64,
        n in 1usize..512,
        l in 1usize..48,
        p_lo in 0.0f64..1.0,
        p_hi in 0.0f64..1.0,
    ) {
        prop_assume!(p_lo <= p_hi);
        let params = VolumeParams { g, n, l };
        for system in System::ALL {
            prop_assert!(
                system.volume(params, p_lo, 1) <= system.volume(params, p_hi, 1) + 1e-9
            );
        }
    }

    #[test]
    fn exflow_beats_deepspeed_at_equal_p_when_deep(
        g in 2usize..32,
        n in 1usize..256,
        p in 0.05f64..1.0,
    ) {
        // With L >= 2G/p the AllGather term is amortized and one Alltoall
        // at fraction p beats two Alltoalls at the same p.
        let l = ((2.0 * g as f64 / p).ceil() as usize).max(2);
        let params = VolumeParams { g, n, l };
        let ds = System::DeepspeedMoe.volume(params, p, 1);
        let ex = System::ExFlow.volume(params, p, 1);
        prop_assert!(ex < ds, "g={} l={} p={}: exflow {} vs ds {}", g, l, p, ex, ds);
    }

    #[test]
    fn uniform_crossing_fraction_matches_formula(g in 1usize..512) {
        let p = uniform_crossing_fraction(g);
        prop_assert!((p - (1.0 - 1.0 / g as f64)).abs() < 1e-12);
        prop_assert!((0.0..1.0).contains(&p));
    }
}
