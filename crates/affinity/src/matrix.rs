//! Conditional-probability (affinity) matrices between MoE layers.

use crate::trace::RoutingTrace;

/// The estimated conditional probability `P(expert p at layer j+gap |
/// expert i at layer j)` — the paper's Eq. 1, generalized to arbitrary layer
/// gaps for the appendix heatmaps (Figs. 14–16).
///
/// Rows index the earlier layer's expert, columns the later layer's.
/// Rows with no observations estimate uniform (maximum entropy — the
/// placement solver then treats them as affinity-free).
#[derive(Debug, Clone, PartialEq)]
pub struct AffinityMatrix {
    n_experts: usize,
    /// Which earlier layer this matrix conditions on.
    from_layer: usize,
    /// Which later layer it predicts.
    to_layer: usize,
    /// Row-major `E x E` conditional probabilities.
    probs: Vec<f64>,
    /// Row-major joint counts (diagnostics and merging).
    counts: Vec<u64>,
}

impl AffinityMatrix {
    /// Estimate the affinity between `from_layer` and `to_layer` from a
    /// trace (`to_layer > from_layer`).
    pub fn from_trace(trace: &RoutingTrace, from_layer: usize, to_layer: usize) -> Self {
        assert!(
            from_layer < to_layer && to_layer < trace.n_layers(),
            "need from_layer < to_layer < n_layers"
        );
        let e = trace.n_experts();
        let mut counts = vec![0u64; e * e];
        for tok in 0..trace.n_tokens() {
            let i = trace.expert_at(tok, from_layer);
            let p = trace.expert_at(tok, to_layer);
            counts[i * e + p] += 1;
        }
        Self::from_counts(counts, e, from_layer, to_layer)
    }

    /// Estimate affinity for every consecutive layer pair of a trace.
    pub fn consecutive(trace: &RoutingTrace) -> Vec<AffinityMatrix> {
        (0..trace.n_layers().saturating_sub(1))
            .map(|j| AffinityMatrix::from_trace(trace, j, j + 1))
            .collect()
    }

    /// Build from raw joint counts.
    pub fn from_counts(
        counts: Vec<u64>,
        n_experts: usize,
        from_layer: usize,
        to_layer: usize,
    ) -> Self {
        assert_eq!(counts.len(), n_experts * n_experts);
        let e = n_experts;
        let mut probs = vec![0.0f64; e * e];
        for i in 0..e {
            let row_total: u64 = counts[i * e..(i + 1) * e].iter().sum();
            if row_total == 0 {
                // Unobserved source expert: maximum-entropy estimate.
                for p in probs[i * e..(i + 1) * e].iter_mut() {
                    *p = 1.0 / e as f64;
                }
            } else {
                for (p, &c) in probs[i * e..(i + 1) * e]
                    .iter_mut()
                    .zip(&counts[i * e..(i + 1) * e])
                {
                    *p = c as f64 / row_total as f64;
                }
            }
        }
        AffinityMatrix {
            n_experts,
            from_layer,
            to_layer,
            probs,
            counts,
        }
    }

    /// Build directly from exact probabilities (e.g. a routing model's
    /// transition matrix) — used for oracle comparisons in tests.
    pub fn from_probs(
        probs: Vec<f64>,
        n_experts: usize,
        from_layer: usize,
        to_layer: usize,
    ) -> Self {
        assert_eq!(probs.len(), n_experts * n_experts);
        for i in 0..n_experts {
            let s: f64 = probs[i * n_experts..(i + 1) * n_experts].iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} must sum to 1, got {s}");
        }
        AffinityMatrix {
            n_experts,
            from_layer,
            to_layer,
            probs,
            counts: vec![0; n_experts * n_experts],
        }
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// The earlier layer.
    pub fn from_layer(&self) -> usize {
        self.from_layer
    }

    /// The later layer.
    pub fn to_layer(&self) -> usize {
        self.to_layer
    }

    /// `P(to = p | from = i)`.
    #[inline]
    pub fn prob(&self, i: usize, p: usize) -> f64 {
        self.probs[i * self.n_experts + p]
    }

    /// One conditional row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.probs[i * self.n_experts..(i + 1) * self.n_experts]
    }

    /// Joint observation count for `(i, p)`.
    pub fn count(&self, i: usize, p: usize) -> u64 {
        self.counts[i * self.n_experts + p]
    }

    /// Observations whose source expert was `i` (the empirical marginal
    /// numerator at the earlier layer).
    pub fn row_count(&self, i: usize) -> u64 {
        self.counts[i * self.n_experts..(i + 1) * self.n_experts]
            .iter()
            .sum()
    }

    /// Total observations folded into this matrix.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The most affiliated successor of expert `i` (the paper's `A*`,
    /// Eq. 2) and its conditional probability.
    pub fn most_affine(&self, i: usize) -> (usize, f64) {
        let row = self.row(i);
        let mut best = 0usize;
        let mut best_p = row[0];
        for (p, &v) in row.iter().enumerate().skip(1) {
            if v > best_p {
                best = p;
                best_p = v;
            }
        }
        (best, best_p)
    }

    /// Probability mass of the top `k` successors of expert `i`.
    pub fn topk_mass(&self, i: usize, k: usize) -> f64 {
        let mut row = self.row(i).to_vec();
        row.sort_by(|a, b| b.partial_cmp(a).unwrap());
        row.iter().take(k).sum()
    }

    /// Render the matrix as an ASCII heatmap (one line per source expert),
    /// for the Fig. 2 / Figs. 14–16 reproductions.
    pub fn ascii_heatmap(&self) -> String {
        const SHADES: [char; 6] = [' ', '.', ':', '+', '#', '@'];
        let mut out = String::new();
        for i in 0..self.n_experts {
            for p in 0..self.n_experts {
                let v = self.prob(i, p);
                // Bucket by conditional probability relative to uniform.
                let rel = v * self.n_experts as f64;
                let idx = if rel < 0.5 {
                    0
                } else if rel < 1.5 {
                    1
                } else if rel < 3.0 {
                    2
                } else if rel < 6.0 {
                    3
                } else if rel < 12.0 {
                    4
                } else {
                    5
                };
                out.push(SHADES[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn trace() -> RoutingTrace {
        // 4 tokens, 3 layers, 3 experts.
        RoutingTrace::new(
            vec![vec![0, 1, 2], vec![0, 1, 0], vec![1, 2, 2], vec![1, 2, 1]],
            3,
        )
    }

    #[test]
    fn rows_sum_to_one() {
        let m = AffinityMatrix::from_trace(&trace(), 0, 1);
        for i in 0..3 {
            let s: f64 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conditional_values_match_hand_count() {
        let m = AffinityMatrix::from_trace(&trace(), 0, 1);
        // From expert 0 at layer 0: both tokens go to expert 1.
        assert_eq!(m.prob(0, 1), 1.0);
        // From expert 1: both go to expert 2.
        assert_eq!(m.prob(1, 2), 1.0);
        // Expert 2 never observed at layer 0: uniform row.
        assert!((m.prob(2, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gap_matrices_supported() {
        let m = AffinityMatrix::from_trace(&trace(), 0, 2);
        assert_eq!(m.from_layer(), 0);
        assert_eq!(m.to_layer(), 2);
        // From expert 0 at layer 0 to layer 2: tokens land on 2 and 0.
        assert_eq!(m.prob(0, 2), 0.5);
        assert_eq!(m.prob(0, 0), 0.5);
    }

    #[test]
    fn consecutive_builds_layer_minus_one_matrices() {
        let ms = AffinityMatrix::consecutive(&trace());
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].from_layer(), 0);
        assert_eq!(ms[1].to_layer(), 2);
    }

    #[test]
    fn most_affine_finds_argmax() {
        let m = AffinityMatrix::from_trace(&trace(), 0, 1);
        assert_eq!(m.most_affine(0), (1, 1.0));
    }

    #[test]
    fn estimated_matrix_converges_to_true_transition() {
        let model = AffinityModelSpec::new(2, 8).with_affinity(0.8).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 40_000, 1, 5);
        let trace = RoutingTrace::from_batch(&batch, 8);
        let est = AffinityMatrix::from_trace(&trace, 0, 1);
        // The corpus is an even domain mixture; compare against it.
        let truth = model.mixture_transition(&[1.0, 1.0, 1.0, 1.0], 0);
        for i in 0..8 {
            for p in 0..8 {
                assert!(
                    (est.prob(i, p) - truth[i * 8 + p]).abs() < 0.03,
                    "P({p}|{i}) est {} vs true {}",
                    est.prob(i, p),
                    truth[i * 8 + p]
                );
            }
        }
    }

    #[test]
    fn topk_mass_is_monotone_in_k() {
        let m = AffinityMatrix::from_trace(&trace(), 0, 1);
        for i in 0..3 {
            assert!(m.topk_mass(i, 1) <= m.topk_mass(i, 2) + 1e-12);
            assert!((m.topk_mass(i, 3) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ascii_heatmap_dimensions() {
        let m = AffinityMatrix::from_trace(&trace(), 0, 1);
        let art = m.ascii_heatmap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 3));
    }

    #[test]
    fn from_probs_validates_rows() {
        let ok = AffinityMatrix::from_probs(vec![0.5, 0.5, 0.1, 0.9], 2, 0, 1);
        assert_eq!(ok.prob(1, 1), 0.9);
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn from_probs_rejects_bad_rows() {
        let _ = AffinityMatrix::from_probs(vec![0.5, 0.4, 0.1, 0.9], 2, 0, 1);
    }

    #[test]
    #[should_panic(expected = "from_layer < to_layer")]
    fn backwards_layers_rejected() {
        let _ = AffinityMatrix::from_trace(&trace(), 1, 1);
    }
}
