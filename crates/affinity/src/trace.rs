//! Routing traces: the raw material affinity is estimated from.

use exflow_model::TokenBatch;

/// A set of top-1 expert paths, one per token, over the model's MoE layers.
///
/// This is what the paper collects by recording "tokens' expert routing
/// decisions at every layer" during a profiling pass (§V-A). Only the
/// primary expert matters for affinity/placement: with top-2 gating the
/// second expert's output is a weighted residual, but the token's *journey*
/// follows its primary chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTrace {
    paths: Vec<Vec<u16>>,
    n_experts: usize,
    n_layers: usize,
}

impl RoutingTrace {
    /// Build from raw paths. Every path must have the same length and every
    /// expert id must be `< n_experts`.
    pub fn new(paths: Vec<Vec<u16>>, n_experts: usize) -> Self {
        assert!(!paths.is_empty(), "a trace needs at least one token");
        let n_layers = paths[0].len();
        assert!(n_layers >= 1, "paths must cover at least one layer");
        for p in &paths {
            assert_eq!(p.len(), n_layers, "all paths must have equal length");
            assert!(
                p.iter().all(|&e| (e as usize) < n_experts),
                "expert id out of range"
            );
        }
        RoutingTrace {
            paths,
            n_experts,
            n_layers,
        }
    }

    /// Build from a sampled [`TokenBatch`], keeping the primary expert.
    pub fn from_batch(batch: &TokenBatch, n_experts: usize) -> Self {
        RoutingTrace::new(batch.top1_paths(), n_experts)
    }

    /// Number of tokens.
    pub fn n_tokens(&self) -> usize {
        self.paths.len()
    }

    /// Number of MoE layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// All paths.
    pub fn paths(&self) -> &[Vec<u16>] {
        &self.paths
    }

    /// Expert chosen by `token` at `layer`.
    #[inline]
    pub fn expert_at(&self, token: usize, layer: usize) -> usize {
        self.paths[token][layer] as usize
    }

    /// Per-expert token counts at one layer (load-balance measurement,
    /// Fig. 11's Y axis).
    pub fn layer_histogram(&self, layer: usize) -> Vec<u64> {
        assert!(layer < self.n_layers);
        let mut h = vec![0u64; self.n_experts];
        for p in &self.paths {
            h[p[layer] as usize] += 1;
        }
        h
    }

    /// Joint `(from_expert, to_expert)` observation counts between two
    /// layers, sorted row-major (ascending source, then successor). This
    /// is the sparse raw material [`crate::SparseAffinity`] estimates
    /// from: at most `n_tokens` distinct pairs exist per gap, so large-`E`
    /// ingestion never touches an `E x E` table.
    pub fn pair_counts(&self, from_layer: usize, to_layer: usize) -> Vec<((u16, u16), u64)> {
        assert!(
            from_layer < to_layer && to_layer < self.n_layers,
            "need from_layer < to_layer < n_layers"
        );
        let mut counts: std::collections::BTreeMap<(u16, u16), u64> =
            std::collections::BTreeMap::new();
        for p in &self.paths {
            *counts.entry((p[from_layer], p[to_layer])).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// A trace containing only the first `n` tokens (sampling studies).
    pub fn truncated(&self, n: usize) -> RoutingTrace {
        assert!(n >= 1 && n <= self.paths.len());
        RoutingTrace {
            paths: self.paths[..n].to_vec(),
            n_experts: self.n_experts,
            n_layers: self.n_layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::CorpusSpec;

    fn small_trace() -> RoutingTrace {
        RoutingTrace::new(
            vec![vec![0, 1, 2], vec![1, 1, 0], vec![0, 1, 2], vec![3, 2, 2]],
            4,
        )
    }

    #[test]
    fn dimensions_reported() {
        let t = small_trace();
        assert_eq!(t.n_tokens(), 4);
        assert_eq!(t.n_layers(), 3);
        assert_eq!(t.n_experts(), 4);
    }

    #[test]
    fn histogram_counts_layer_experts() {
        let t = small_trace();
        assert_eq!(t.layer_histogram(0), vec![2, 1, 0, 1]);
        assert_eq!(t.layer_histogram(1), vec![0, 3, 1, 0]);
        assert_eq!(t.layer_histogram(2), vec![1, 0, 3, 0]);
    }

    #[test]
    fn histogram_sums_to_token_count() {
        let t = small_trace();
        for l in 0..3 {
            assert_eq!(t.layer_histogram(l).iter().sum::<u64>(), 4);
        }
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = small_trace().truncated(2);
        assert_eq!(t.n_tokens(), 2);
        assert_eq!(t.expert_at(1, 0), 1);
    }

    #[test]
    fn from_batch_extracts_primary_paths() {
        let m = AffinityModelSpec::new(5, 8).build();
        let b = TokenBatch::sample(&m, &CorpusSpec::pile_proxy(4), 20, 2, 1);
        let t = RoutingTrace::from_batch(&b, 8);
        assert_eq!(t.n_tokens(), 20);
        assert_eq!(t.n_layers(), 5);
        for tok in 0..20 {
            for l in 0..5 {
                assert_eq!(t.expert_at(tok, l), b.routes[tok][l][0] as usize);
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_paths_rejected() {
        let _ = RoutingTrace::new(vec![vec![0, 1], vec![0]], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_expert_rejected() {
        let _ = RoutingTrace::new(vec![vec![0, 5]], 4);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_trace_rejected() {
        let _ = RoutingTrace::new(vec![], 4);
    }
}
