//! Plain-text (CSV) serialization for traces and affinity matrices.
//!
//! The ExFlow workflow is offline-profile → store → load-at-deploy: traces
//! are recorded where the model runs, but the placement is solved where the
//! model is *deployed* (the whole point is adapting to that cluster's
//! topology). These formats are the interchange artifacts.

use std::fmt;

use crate::matrix::AffinityMatrix;
use crate::trace::RoutingTrace;

/// Parse errors for the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Input was empty.
    Empty,
    /// A cell failed to parse as the expected number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending cell text.
        cell: String,
    },
    /// A row had a different number of cells than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
    },
    /// Header metadata was missing or malformed.
    BadHeader,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Empty => write!(f, "empty input"),
            IoError::BadNumber { line, cell } => {
                write!(f, "line {line}: cannot parse `{cell}` as a number")
            }
            IoError::RaggedRow { line } => write!(f, "line {line}: inconsistent column count"),
            IoError::BadHeader => write!(f, "missing or malformed header line"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serialize a trace: a header `# experts=E` followed by one CSV row of
/// per-layer expert ids per token.
pub fn write_trace_csv(trace: &RoutingTrace) -> String {
    let mut out = String::with_capacity(trace.n_tokens() * trace.n_layers() * 3);
    out.push_str(&format!("# experts={}\n", trace.n_experts()));
    for path in trace.paths() {
        let cells: Vec<String> = path.iter().map(|e| e.to_string()).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parse the format produced by [`write_trace_csv`].
pub fn parse_trace_csv(text: &str) -> Result<RoutingTrace, IoError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(IoError::Empty)?;
    let n_experts: usize = header
        .strip_prefix("# experts=")
        .and_then(|s| s.trim().parse().ok())
        .ok_or(IoError::BadHeader)?;

    let mut paths: Vec<Vec<u16>> = Vec::new();
    let mut width: Option<usize> = None;
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for cell in line.split(',') {
            let v: u16 = cell.trim().parse().map_err(|_| IoError::BadNumber {
                line: idx + 1,
                cell: cell.to_string(),
            })?;
            row.push(v);
        }
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => return Err(IoError::RaggedRow { line: idx + 1 }),
            _ => {}
        }
        paths.push(row);
    }
    if paths.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(RoutingTrace::new(paths, n_experts))
}

/// Serialize an affinity matrix: header with layer pair, then `E` CSV rows
/// of conditional probabilities.
pub fn write_matrix_csv(m: &AffinityMatrix) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# from={} to={} experts={}\n",
        m.from_layer(),
        m.to_layer(),
        m.n_experts()
    ));
    for i in 0..m.n_experts() {
        let cells: Vec<String> = m.row(i).iter().map(|p| format!("{p:.9}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parse the format produced by [`write_matrix_csv`].
pub fn parse_matrix_csv(text: &str) -> Result<AffinityMatrix, IoError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(IoError::Empty)?;
    let parse_field = |name: &str| -> Option<usize> {
        header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|s| s.parse().ok())
    };
    let from = parse_field("from").ok_or(IoError::BadHeader)?;
    let to = parse_field("to").ok_or(IoError::BadHeader)?;
    let e = parse_field("experts").ok_or(IoError::BadHeader)?;

    let mut probs: Vec<f64> = Vec::with_capacity(e * e);
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, IoError> = line
            .split(',')
            .map(|cell| {
                cell.trim().parse().map_err(|_| IoError::BadNumber {
                    line: idx + 1,
                    cell: cell.to_string(),
                })
            })
            .collect();
        let row = row?;
        if row.len() != e {
            return Err(IoError::RaggedRow { line: idx + 1 });
        }
        probs.extend(row);
    }
    if probs.len() != e * e {
        return Err(IoError::Empty);
    }
    // Re-normalize tiny fp drift from the fixed-precision text format.
    for i in 0..e {
        let s: f64 = probs[i * e..(i + 1) * e].iter().sum();
        if s > 0.0 {
            for p in probs[i * e..(i + 1) * e].iter_mut() {
                *p /= s;
            }
        }
    }
    Ok(AffinityMatrix::from_probs(probs, e, from, to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn trace() -> RoutingTrace {
        let model = AffinityModelSpec::new(5, 8).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 200, 1, 77);
        RoutingTrace::from_batch(&batch, 8)
    }

    #[test]
    fn trace_round_trip() {
        let t = trace();
        let text = write_trace_csv(&t);
        let parsed = parse_trace_csv(&text).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn matrix_round_trip_within_precision() {
        let t = trace();
        let m = AffinityMatrix::from_trace(&t, 1, 2);
        let parsed = parse_matrix_csv(&write_matrix_csv(&m)).unwrap();
        assert_eq!(parsed.from_layer(), 1);
        assert_eq!(parsed.to_layer(), 2);
        for i in 0..8 {
            for p in 0..8 {
                assert!((parsed.prob(i, p) - m.prob(i, p)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(parse_trace_csv(""), Err(IoError::Empty));
        assert_eq!(parse_matrix_csv(""), Err(IoError::Empty));
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(parse_trace_csv("hello\n1,2\n"), Err(IoError::BadHeader));
        assert_eq!(parse_matrix_csv("# from=0\n"), Err(IoError::BadHeader));
    }

    #[test]
    fn bad_number_reported_with_line() {
        let err = parse_trace_csv("# experts=4\n1,2\n1,x\n").unwrap_err();
        assert_eq!(
            err,
            IoError::BadNumber {
                line: 3,
                cell: "x".into()
            }
        );
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = parse_trace_csv("# experts=4\n1,2\n1,2,3\n").unwrap_err();
        assert_eq!(err, IoError::RaggedRow { line: 3 });
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::BadNumber {
            line: 7,
            cell: "zz".into(),
        };
        assert!(e.to_string().contains('7') && e.to_string().contains("zz"));
    }
}
