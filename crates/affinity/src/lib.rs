//! # exflow-affinity
//!
//! Routing-trace capture and inter-layer expert-affinity estimation —
//! the measurement half of ExFlow (IPDPS 2024, §IV-B).
//!
//! The paper defines *expert affinity* as the conditional probability that a
//! token routed to expert `i` at layer `j` is routed to expert `p` at layer
//! `j+1` (Eq. 1). This crate:
//!
//! * records token routing decisions into a [`RoutingTrace`]
//!   (the simulated analogue of "tracing tokens from the Pile through a
//!   pre-trained checkpoint");
//! * estimates [`AffinityMatrix`] conditionals for consecutive layers
//!   (Fig. 2) and arbitrary layer gaps (appendix Figs. 14–16);
//! * computes the summary [`metrics`] the evaluation plots: scaled
//!   affinity, top-k conditional mass, row entropy, and the
//!   placement-transfer scores of Table III;
//! * supports [`sampling`] studies — how many tokens are needed before the
//!   estimate stabilizes (Fig. 13);
//! * estimates [`SparseAffinity`] conditionals in CSR form for
//!   large-expert instances (`E = 256/512`), where top-k routing leaves
//!   the dense table overwhelmingly zero;
//! * maintains a [`StreamingAffinity`] estimate online — exponentially
//!   decayed ingestion of serving-window traces, frozen
//!   [`AffinitySnapshot`]s for the placement solver, and the windowed
//!   divergence signal the drift detector triggers re-placement on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod matrix;
pub mod metrics;
pub mod sampling;
pub mod sparse;
pub mod streaming;
pub mod trace;

pub use matrix::AffinityMatrix;
pub use sparse::SparseAffinity;
pub use streaming::{AffinitySnapshot, SnapshotDelta, StreamingAffinity};
pub use trace::RoutingTrace;
