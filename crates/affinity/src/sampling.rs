//! Sample-efficiency of affinity estimation (the paper's Fig. 13 / §V-G):
//! how many traced tokens are needed before the estimated conditional
//! probabilities — and hence the placement derived from them — stabilize.

use crate::matrix::AffinityMatrix;
use crate::metrics;
use crate::sparse::SparseAffinity;
use crate::trace::RoutingTrace;

/// One point of the sample-efficiency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityPoint {
    /// Number of tokens used for estimation.
    pub n_tokens: usize,
    /// Mean absolute error of the estimated consecutive-layer conditionals
    /// against the full-trace reference.
    pub estimation_error: f64,
    /// Transfer score of the truncated estimate against the full-trace
    /// reference (1.0 = the top-k successor sets already match).
    pub transfer: f64,
}

/// Compute the estimation-stability curve for a list of sample sizes.
///
/// For each `n` in `sizes`, estimates all consecutive-layer affinity
/// matrices from the first `n` tokens and compares them to the matrices
/// estimated from the *whole* trace. `k` is the successor-set size used for
/// the transfer score (typically the per-GPU expert capacity).
pub fn stability_curve(trace: &RoutingTrace, sizes: &[usize], k: usize) -> Vec<StabilityPoint> {
    let reference = AffinityMatrix::consecutive(trace);
    sizes
        .iter()
        .map(|&n| {
            let n = n.min(trace.n_tokens()).max(1);
            let truncated = trace.truncated(n);
            let est = AffinityMatrix::consecutive(&truncated);
            let gaps = reference.len().max(1);
            let mut err = 0.0f64;
            let mut transfer = 0.0f64;
            for (a, b) in est.iter().zip(reference.iter()) {
                err += metrics::mean_abs_diff(a, b);
                transfer += metrics::transfer_score(a, b, k);
            }
            StabilityPoint {
                n_tokens: n,
                estimation_error: err / gaps as f64,
                transfer: transfer / gaps as f64,
            }
        })
        .collect()
}

/// One point of the estimated-support growth curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupportPoint {
    /// Number of tokens used for estimation.
    pub n_tokens: usize,
    /// Stored cells across all consecutive-layer estimates (uniform fills
    /// of unobserved rows included).
    pub nnz: usize,
    /// `nnz` over the dense cell count (`gaps x E^2`).
    pub density: f64,
}

/// How the estimated affinity support grows with the profiling-token
/// budget. Together with [`stability_curve`] this answers the sparse
/// backend's sizing question: the placement objective stores `O(nnz)` per
/// gap, and `nnz` is bounded by the token budget plus the uniform fill of
/// still-unobserved rows — so density collapses as `E` grows faster than
/// the budget.
pub fn support_curve(trace: &RoutingTrace, sizes: &[usize]) -> Vec<SupportPoint> {
    let e = trace.n_experts();
    sizes
        .iter()
        .map(|&n| {
            let n = n.min(trace.n_tokens()).max(1);
            let estimates = SparseAffinity::consecutive(&trace.truncated(n));
            let nnz: usize = estimates.iter().map(SparseAffinity::nnz).sum();
            let cells = estimates.len() * e * e;
            SupportPoint {
                n_tokens: n,
                nnz,
                density: if cells == 0 {
                    0.0
                } else {
                    nnz as f64 / cells as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn big_trace(e: usize, n: usize) -> RoutingTrace {
        let model = AffinityModelSpec::new(6, e).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), n, 1, 99);
        RoutingTrace::from_batch(&batch, e)
    }

    #[test]
    fn error_shrinks_with_more_tokens() {
        let t = big_trace(8, 8000);
        let curve = stability_curve(&t, &[50, 500, 4000], 2);
        assert_eq!(curve.len(), 3);
        assert!(
            curve[0].estimation_error > curve[2].estimation_error,
            "error should fall: {:?}",
            curve
        );
    }

    #[test]
    fn transfer_rises_with_more_tokens() {
        let t = big_trace(16, 8000);
        let curve = stability_curve(&t, &[50, 4000], 4);
        assert!(curve[1].transfer >= curve[0].transfer - 0.02);
        assert!(curve[1].transfer > 0.95, "near-full sample must transfer");
    }

    #[test]
    fn full_sample_has_zero_error() {
        let t = big_trace(8, 1000);
        let curve = stability_curve(&t, &[1000], 2);
        assert!(curve[0].estimation_error < 1e-12);
        assert!((curve[0].transfer - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sizes_are_clamped_to_trace() {
        let t = big_trace(8, 100);
        let curve = stability_curve(&t, &[0, 10_000], 2);
        assert_eq!(curve[0].n_tokens, 1);
        assert_eq!(curve[1].n_tokens, 100);
    }

    #[test]
    fn support_is_bounded_by_tokens_plus_uniform_fill() {
        let e = 32;
        let t = big_trace(e, 3000);
        let curve = support_curve(&t, &[100, 3000]);
        for point in &curve {
            // Per gap: at most one cell per token plus a uniform row per
            // unobserved source expert.
            let gaps = 5;
            assert!(point.nnz <= gaps * (point.n_tokens + e * e));
            assert!(point.density > 0.0 && point.density <= 1.0 + 1e-12);
        }
        // With a rich budget every row is observed, so the support is
        // exactly the set of distinct transitions: well under dense.
        assert!(curve[1].density < 1.0);
    }

    #[test]
    fn more_experts_need_more_tokens() {
        // The paper: "Models with more experts per layer require more
        // tokens to precisely capture the expert affinity."
        let small = big_trace(8, 4000);
        let large = big_trace(64, 4000);
        let err_small = stability_curve(&small, &[200], 2)[0].estimation_error;
        let err_large = stability_curve(&large, &[200], 2)[0].estimation_error;
        // Normalize by the uniform baseline magnitude (1/E per cell).
        assert!(err_large * 64.0 > err_small * 8.0);
    }
}
