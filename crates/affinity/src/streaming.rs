//! Streaming affinity estimation with exponential decay — the online
//! counterpart of [`AffinityMatrix`](crate::AffinityMatrix) /
//! [`SparseAffinity`](crate::SparseAffinity).
//!
//! The offline estimators consume one profiling trace and freeze. Under
//! live traffic the routing distribution drifts, so the online serving
//! mode instead maintains a *decayed* estimate: each serving window's
//! routing decisions are folded in after multiplying all accumulated mass
//! by a decay factor, making the estimate an exponentially weighted
//! average over recent windows. Like the offline sparse path, ingestion is
//! pair-count based (at most `n_tokens` distinct `(expert, successor)`
//! pairs per window per gap) and never materializes an `E x E` table.
//!
//! Three consumers hang off the estimator:
//!
//! * [`StreamingAffinity::snapshot`] freezes the current estimate into an
//!   [`AffinitySnapshot`] (per-gap CSR conditionals + source marginals) —
//!   the form the placement objective builds from
//!   (`Objective::from_snapshot` in `exflow-placement`, sharing the
//!   dense/CSR gap duality);
//! * [`StreamingAffinity::divergence`] measures how far the live estimate
//!   has drifted from a reference snapshot (the one the current placement
//!   was solved against) — the drift-detector signal;
//! * the marginal/row accessors feed diagnostics.
//!
//! With `decay = 1.0` and a single window, the streaming estimate defines
//! — bit for bit — the same conditionals and marginals as the offline
//! estimators on the same trace (integer counts below 2^53 are exact in
//! f64), so online and offline paths agree wherever they overlap.

use std::collections::BTreeMap;

use crate::trace::RoutingTrace;

/// Exponentially decayed conditional-probability estimate over a stream of
/// routing-trace windows.
///
/// ```
/// use exflow_affinity::{RoutingTrace, StreamingAffinity};
///
/// // Two serving windows over 3 experts and 3 layers.
/// let w0 = RoutingTrace::new(vec![vec![0, 1, 2], vec![0, 1, 2]], 3);
/// let w1 = RoutingTrace::new(vec![vec![0, 2, 1], vec![0, 2, 1]], 3);
///
/// let mut est = StreamingAffinity::new(3, 3, 0.5);
/// est.observe(&w0);
/// let reference = est.snapshot();
/// assert_eq!(est.divergence(&reference), 0.0); // nothing drifted yet
///
/// est.observe(&w1); // routing changed: 0 -> 2 now dominates 0 -> 1
/// assert!(est.divergence(&reference) > 0.25);
/// // Recent windows outweigh old ones: P(2|0) = 2/(2*0.5 + 2) = 2/3.
/// let snap = est.snapshot();
/// assert!((snap.prob(0, 0, 2) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingAffinity {
    n_layers: usize,
    n_experts: usize,
    decay: f64,
    windows_seen: u64,
    /// Per gap: joint mass of each observed `(from, to)` pair. BTreeMap
    /// keeps iteration in row-major ascending order, which keeps every
    /// downstream accumulation bit-deterministic.
    ///
    /// Decay is applied *lazily*, row by row: a row's values are only
    /// brought up to date (stepwise, one multiplication per elapsed
    /// window, so the result is bit-identical to eager per-window decay)
    /// when the row next receives counts. Between touches a row's stored
    /// values and its [`Self::row_total`] denominator share the same
    /// stale timestamp, so the *conditional* `value / row_total` — the
    /// only thing snapshots expose — is unaffected by the deferral and,
    /// crucially, bit-stable across windows that do not touch the row.
    /// That stability is what makes consecutive snapshots differ only in
    /// touched rows, the contract [`Self::observe_delta`] exports.
    gaps: Vec<BTreeMap<(u16, u16), f64>>,
    /// Per gap: decayed mass of each source expert (row totals), decayed
    /// *eagerly* every window — this feeds the marginal weights (which
    /// change every window anyway) and the uniform-row test.
    row_mass: Vec<Vec<f64>>,
    /// Per gap: lazy per-row denominators — bit-identical to `row_mass`
    /// at each row's last touch (both sides apply the same op sequence:
    /// one decay multiplication per window, then the window's counts in
    /// ingestion order).
    row_total: Vec<Vec<f64>>,
    /// Per gap: the window count as of which each row's lazy state
    /// (`gaps` values + `row_total`) is current.
    row_stamp: Vec<Vec<u64>>,
}

impl StreamingAffinity {
    /// An empty estimator for `n_layers` layers and `n_experts` experts.
    /// `decay` is the multiplier applied to all accumulated mass before
    /// each new window is folded in: `1.0` never forgets (the plain
    /// running estimate), small values track only the recent past.
    pub fn new(n_layers: usize, n_experts: usize, decay: f64) -> Self {
        assert!(n_layers >= 1 && n_experts >= 1);
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        let n_gaps = n_layers - 1;
        StreamingAffinity {
            n_layers,
            n_experts,
            decay,
            windows_seen: 0,
            gaps: vec![BTreeMap::new(); n_gaps],
            row_mass: vec![vec![0.0; n_experts]; n_gaps],
            row_total: vec![vec![0.0; n_experts]; n_gaps],
            row_stamp: vec![vec![0; n_experts]; n_gaps],
        }
    }

    /// Fold one serving window into the estimate: decay everything
    /// accumulated so far, then add the window's pair counts for every
    /// consecutive layer gap.
    pub fn observe(&mut self, window: &RoutingTrace) {
        self.fold(window, false);
    }

    /// Fold one serving window into the estimate (exactly like
    /// [`Self::observe`]) and return the [`SnapshotDelta`] describing how
    /// the frozen estimate changed: the conditional rows the window
    /// touched (plus any row whose decayed-away mass flipped it to the
    /// uniform estimate), with their new CSR fragments, and the full new
    /// marginal weights (which shift every window because the totals
    /// decay). Applying the delta to the previous window's snapshot
    /// reproduces [`Self::snapshot`] on the updated estimate bit for bit
    /// — the contract `Objective::apply_snapshot_delta` in
    /// `exflow-placement` builds on.
    pub fn observe_delta(&mut self, window: &RoutingTrace) -> SnapshotDelta {
        self.fold(window, true)
            .expect("fold emits a delta when asked to")
    }

    /// Bring one row's lazy state (pair values + `row_total`) up to
    /// `now`, applying one decay multiplication per elapsed window — the
    /// exact op sequence eager decay would have applied. Idempotent
    /// within a window.
    fn materialize_row(&mut self, gap: usize, row: usize, now: u64) {
        let stamp = self.row_stamp[gap][row];
        if stamp == now {
            return;
        }
        self.row_stamp[gap][row] = now;
        if self.decay >= 1.0 {
            return;
        }
        let pending = now - stamp;
        let lo = (row as u16, 0u16);
        let hi = (row as u16, u16::MAX);
        for (_, v) in self.gaps[gap].range_mut(lo..=hi) {
            for _ in 0..pending {
                *v *= self.decay;
            }
        }
        let t = &mut self.row_total[gap][row];
        for _ in 0..pending {
            *t *= self.decay;
        }
    }

    /// The shared ingestion fold behind [`Self::observe`] /
    /// [`Self::observe_delta`]; the delta is only assembled when `emit`
    /// is set, so plain observation pays nothing for it.
    fn fold(&mut self, window: &RoutingTrace, emit: bool) -> Option<SnapshotDelta> {
        assert_eq!(window.n_layers(), self.n_layers, "window layer mismatch");
        assert_eq!(window.n_experts(), self.n_experts, "window expert mismatch");
        let e = self.n_experts;
        let now = self.windows_seen + 1;
        let mut delta_gaps = Vec::with_capacity(if emit { self.n_gaps() } else { 0 });
        let mut delta_weights = Vec::with_capacity(if emit { self.n_gaps() } else { 0 });
        for gap in 0..self.n_gaps() {
            // Eager decay of the marginal row masses. A positive mass that
            // underflows to exactly 0.0 flips its row to the uniform
            // estimate without the row being touched — those rows must
            // still appear in the delta (their lazy state stays stale; the
            // uniform row is what the snapshot emits for them).
            let mut flipped: Vec<usize> = Vec::new();
            if self.decay < 1.0 {
                for (i, m) in self.row_mass[gap].iter_mut().enumerate() {
                    let was_pos = *m > 0.0;
                    *m *= self.decay;
                    if was_pos && *m == 0.0 {
                        flipped.push(i);
                    }
                }
            }
            // Touched rows: materialize the lazy state first (stepwise
            // decay to `now`), then fold the counts in, in ingestion
            // order, mirrored onto the eager and lazy totals alike.
            let mut touched: Vec<usize> = Vec::new();
            for ((i, p), c) in window.pair_counts(gap, gap + 1) {
                let row = i as usize;
                if touched.last() != Some(&row) && !touched.contains(&row) {
                    touched.push(row);
                }
                self.materialize_row(gap, row, now);
                *self.gaps[gap].entry((i, p)).or_insert(0.0) += c as f64;
                self.row_total[gap][row] += c as f64;
                self.row_mass[gap][row] += c as f64;
            }
            if emit {
                touched.sort_unstable();
                // A flipped row that also received counts is an ordinary
                // touched row (its mass is positive again); only the
                // untouched flips emit as uniform rows.
                let mut rows: Vec<usize> = touched;
                rows.extend(
                    flipped.iter().copied().filter(|r| {
                        self.row_stamp[gap][*r] != now && self.row_mass[gap][*r] <= 0.0
                    }),
                );
                rows.sort_unstable();
                rows.dedup();
                let mut row_ptr = Vec::with_capacity(rows.len() + 1);
                row_ptr.push(0usize);
                let mut cols = Vec::new();
                let mut probs = Vec::new();
                for &row in &rows {
                    if self.row_mass[gap][row] <= 0.0 {
                        for p in 0..e {
                            cols.push(p);
                            probs.push(1.0 / e as f64);
                        }
                    } else {
                        let denom = self.row_total[gap][row];
                        let lo = (row as u16, 0u16);
                        let hi = (row as u16, u16::MAX);
                        for (&(_, p), &v) in self.gaps[gap].range(lo..=hi) {
                            cols.push(p as usize);
                            probs.push(v / denom);
                        }
                    }
                    row_ptr.push(cols.len());
                }
                delta_gaps.push(DeltaGap {
                    rows,
                    row_ptr,
                    cols,
                    probs,
                });
                let mass = &self.row_mass[gap];
                let total: f64 = mass.iter().sum();
                delta_weights.push(if total <= 0.0 {
                    vec![1.0 / e as f64; e]
                } else {
                    mass.iter().map(|&m| m / total).collect()
                });
            }
        }
        self.windows_seen = now;
        emit.then_some(SnapshotDelta {
            n_layers: self.n_layers,
            n_experts: e,
            window: now,
            gaps: delta_gaps,
            weights: delta_weights,
        })
    }

    /// Number of MoE layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// Number of layer gaps (`L - 1`).
    pub fn n_gaps(&self) -> usize {
        self.n_layers - 1
    }

    /// The decay multiplier.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Windows folded in so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Distinct `(from, to)` pairs ever observed at one gap.
    pub fn gap_nnz(&self, gap: usize) -> usize {
        self.gaps[gap].len()
    }

    /// Decayed mass of source expert `i` at `gap` (the numerator of its
    /// marginal weight).
    pub fn row_mass(&self, gap: usize, i: usize) -> f64 {
        self.row_mass[gap][i]
    }

    /// Freeze the current estimate: per-gap CSR conditionals (rows with no
    /// observed mass estimate uniform, stored explicitly like the offline
    /// estimators) plus per-gap source-marginal weights.
    ///
    /// Read-only: conditionals come from each row's lazy state (stale
    /// values over the equally stale `row_total` denominator), so
    /// a row untouched since the previous snapshot reproduces its
    /// conditional bits exactly — only touched (or decayed-to-uniform)
    /// rows and the marginal weights ever differ between consecutive
    /// snapshots.
    pub fn snapshot(&self) -> AffinitySnapshot {
        let e = self.n_experts;
        let mut gaps = Vec::with_capacity(self.n_gaps());
        let mut weights = Vec::with_capacity(self.n_gaps());
        for gap in 0..self.n_gaps() {
            let mass = &self.row_mass[gap];
            let mut row_ptr = Vec::with_capacity(e + 1);
            row_ptr.push(0usize);
            let mut cols = Vec::new();
            let mut probs = Vec::new();
            let mut iter = self.gaps[gap].iter().peekable();
            for (i, &live_mass) in mass.iter().enumerate() {
                if live_mass <= 0.0 {
                    // Unobserved (or fully decayed-away) source expert:
                    // maximum-entropy estimate, stored explicitly.
                    for p in 0..e {
                        cols.push(p);
                        probs.push(1.0 / e as f64);
                    }
                    // Skip any zero-mass residue of this row.
                    while iter.next_if(|((r, _), _)| *r as usize == i).is_some() {}
                } else {
                    let denom = self.row_total[gap][i];
                    while let Some(((_, p), &v)) = iter.next_if(|((r, _), _)| *r as usize == i) {
                        cols.push(*p as usize);
                        probs.push(v / denom);
                    }
                }
                row_ptr.push(cols.len());
            }
            let total: f64 = mass.iter().sum();
            weights.push(if total <= 0.0 {
                vec![1.0 / e as f64; e]
            } else {
                mass.iter().map(|&m| m / total).collect()
            });
            gaps.push(SnapshotGap {
                row_ptr,
                cols,
                probs,
            });
        }
        AffinitySnapshot {
            n_layers: self.n_layers,
            n_experts: e,
            gaps,
            weights,
        }
    }

    /// Windowed drift signal: the marginal-weighted mean total-variation
    /// distance between the live conditionals and `reference`, averaged
    /// over gaps —
    /// `(1/G) Σ_gap Σ_i w_live(i) · ½ Σ_p |P_live(p|i) − P_ref(p|i)|`.
    ///
    /// Ranges over `[0, 1]`: 0 when nothing moved, 1 when every live row
    /// puts all mass where the reference put none. Row weights come from
    /// the *live* side (drift on experts that no longer receive traffic
    /// should not trigger re-placement). A gapless (single-layer) model
    /// has no transitions to drift, so the signal is 0.
    pub fn divergence(&self, reference: &AffinitySnapshot) -> f64 {
        assert_eq!(reference.n_layers, self.n_layers, "snapshot layer mismatch");
        assert_eq!(
            reference.n_experts, self.n_experts,
            "snapshot expert mismatch"
        );
        if self.n_gaps() == 0 {
            return 0.0;
        }
        let live = self.snapshot();
        let mut total = 0.0f64;
        for gap in 0..self.n_gaps() {
            for i in 0..self.n_experts {
                let w = live.weights[gap][i];
                if w == 0.0 {
                    continue;
                }
                let (lc, lp) = live.row(gap, i);
                let (rc, rp) = reference.row(gap, i);
                let mut tv = 0.0f64;
                merge_rows(lc, lp, rc, rp, |_, a, b| tv += (a - b).abs());
                total += w * 0.5 * tv;
            }
        }
        total / self.n_gaps() as f64
    }
}

/// One frozen gap: CSR conditionals, columns ascending per row.
#[derive(Debug, Clone, PartialEq)]
struct SnapshotGap {
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    probs: Vec<f64>,
}

/// A frozen [`StreamingAffinity`] estimate: per-gap CSR conditional
/// matrices plus source-marginal weights. This is what placements are
/// solved against in the online mode, and the reference the drift
/// detector compares the live estimate to.
#[derive(Debug, Clone, PartialEq)]
pub struct AffinitySnapshot {
    n_layers: usize,
    n_experts: usize,
    gaps: Vec<SnapshotGap>,
    /// `weights[gap][i]`: marginal share of source expert `i` (sums to 1).
    weights: Vec<Vec<f64>>,
}

impl AffinitySnapshot {
    /// Number of MoE layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// Number of layer gaps (`L - 1`).
    pub fn n_gaps(&self) -> usize {
        self.gaps.len()
    }

    /// Stored cells of one gap.
    pub fn gap_nnz(&self, gap: usize) -> usize {
        self.gaps[gap].cols.len()
    }

    /// The raw CSR triplet `(row_ptr, cols, probs)` of one gap — consumed
    /// by the placement objective's builder.
    pub fn gap_csr(&self, gap: usize) -> (&[usize], &[usize], &[f64]) {
        let g = &self.gaps[gap];
        (&g.row_ptr, &g.cols, &g.probs)
    }

    /// Source-marginal weights of one gap (each sums to 1).
    pub fn gap_weights(&self, gap: usize) -> &[f64] {
        &self.weights[gap]
    }

    /// Stored entries of one conditional row: `(columns, probabilities)`.
    #[inline]
    pub fn row(&self, gap: usize, i: usize) -> (&[usize], &[f64]) {
        let g = &self.gaps[gap];
        let (lo, hi) = (g.row_ptr[i], g.row_ptr[i + 1]);
        (&g.cols[lo..hi], &g.probs[lo..hi])
    }

    /// `P(to = p | from = i)` at `gap` (0 for cells not stored).
    pub fn prob(&self, gap: usize, i: usize, p: usize) -> f64 {
        let (cols, probs) = self.row(gap, i);
        match cols.binary_search(&p) {
            Ok(k) => probs[k],
            Err(_) => 0.0,
        }
    }

    /// Per-expert popularity at one *layer* (not gap): the marginal share
    /// of traffic each expert receives there, summing to 1.
    ///
    /// For every layer with an outgoing gap this is that gap's source
    /// marginal ([`AffinitySnapshot::gap_weights`]); the last layer has no
    /// outgoing gap, so its popularity is the successor mass flowing *into*
    /// it (`Σ_i w(i) · P(p|i)` over the final gap). A gapless single-layer
    /// snapshot carries no routing information, so every expert is equally
    /// popular. This is the popularity signal replication policies rank
    /// experts by (the "expert popularity" heuristic of the paper's §VI
    /// replication baseline), available online without rebuilding an
    /// objective.
    pub fn layer_popularity(&self, layer: usize) -> Vec<f64> {
        assert!(layer < self.n_layers, "layer out of range");
        let e = self.n_experts;
        if self.gaps.is_empty() {
            return vec![1.0 / e as f64; e];
        }
        if layer < self.n_gaps() {
            return self.weights[layer].clone();
        }
        // Successor mass into the last layer, accumulated in ascending
        // (source, column) order so the sums are bit-deterministic.
        let gap = self.n_gaps() - 1;
        let mut mass = vec![0.0f64; e];
        for i in 0..e {
            let w = self.weights[gap][i];
            if w == 0.0 {
                continue;
            }
            let (cols, probs) = self.row(gap, i);
            for (&p, &v) in cols.iter().zip(probs) {
                mass[p] += w * v;
            }
        }
        mass
    }
}

/// The change between two consecutive [`StreamingAffinity::snapshot`]s,
/// produced by [`StreamingAffinity::observe_delta`]: the conditional rows
/// the window changed (touched by counts, or flipped to the uniform
/// estimate by decay underflow) with their new CSR fragments, plus the
/// full new marginal-weight vectors (the totals decay, so every weight
/// moves every window). Rows not listed are — bit for bit — unchanged
/// from the previous snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    n_layers: usize,
    n_experts: usize,
    window: u64,
    gaps: Vec<DeltaGap>,
    weights: Vec<Vec<f64>>,
}

/// One gap's changed rows: a sorted row list plus a CSR fragment over
/// exactly those rows.
#[derive(Debug, Clone, PartialEq)]
struct DeltaGap {
    rows: Vec<usize>,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    probs: Vec<f64>,
}

impl SnapshotDelta {
    /// Number of MoE layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// Number of layer gaps (`L - 1`).
    pub fn n_gaps(&self) -> usize {
        self.gaps.len()
    }

    /// The (1-based) window count after the observation this delta
    /// describes.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Whether no conditional row changed anywhere (weights may still
    /// have moved).
    pub fn no_rows_changed(&self) -> bool {
        self.gaps.iter().all(|g| g.rows.is_empty())
    }

    /// The changed row indices of one gap, strictly ascending.
    pub fn touched_rows(&self, gap: usize) -> &[usize] {
        &self.gaps[gap].rows
    }

    /// The new stored entries of the `k`-th changed row of `gap`:
    /// `(columns, probabilities)`, columns ascending — exactly what
    /// [`AffinitySnapshot::row`] returns for that row on the updated
    /// estimate.
    pub fn fragment(&self, gap: usize, k: usize) -> (&[usize], &[f64]) {
        let g = &self.gaps[gap];
        let (lo, hi) = (g.row_ptr[k], g.row_ptr[k + 1]);
        (&g.cols[lo..hi], &g.probs[lo..hi])
    }

    /// The full new marginal-weight vector of one gap (sums to 1).
    pub fn gap_weights(&self, gap: usize) -> &[f64] {
        &self.weights[gap]
    }
}

/// Walk two column-sorted sparse rows in lockstep, calling
/// `f(col, value_a, value_b)` for every column present in either side (the
/// absent side contributes 0.0), in strictly ascending column order.
#[inline]
fn merge_rows<F: FnMut(usize, f64, f64)>(
    ca: &[usize],
    va: &[f64],
    cb: &[usize],
    vb: &[f64],
    mut f: F,
) {
    let (mut a, mut b) = (0usize, 0usize);
    while a < ca.len() || b < cb.len() {
        let ka = if a < ca.len() { ca[a] } else { usize::MAX };
        let kb = if b < cb.len() { cb[b] } else { usize::MAX };
        if ka < kb {
            f(ka, va[a], 0.0);
            a += 1;
        } else if kb < ka {
            f(kb, 0.0, vb[b]);
            b += 1;
        } else {
            f(ka, va[a], vb[b]);
            a += 1;
            b += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::AffinityMatrix;
    use crate::sparse::SparseAffinity;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn sampled_trace(e: usize, l: usize, n: usize, seed: u64) -> RoutingTrace {
        let model = AffinityModelSpec::new(l, e).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), n, 1, seed);
        RoutingTrace::from_batch(&batch, e)
    }

    #[test]
    fn single_window_matches_offline_estimators_bitwise() {
        let t = sampled_trace(16, 4, 1200, 3);
        let mut s = StreamingAffinity::new(4, 16, 1.0);
        s.observe(&t);
        let snap = s.snapshot();
        for gap in 0..3 {
            let dense = AffinityMatrix::from_trace(&t, gap, gap + 1);
            let sparse = SparseAffinity::from_trace(&t, gap, gap + 1);
            for i in 0..16 {
                for p in 0..16 {
                    assert_eq!(
                        snap.prob(gap, i, p).to_bits(),
                        dense.prob(i, p).to_bits(),
                        "gap {gap} cell ({i},{p})"
                    );
                }
            }
            assert_eq!(snap.gap_nnz(gap), sparse.nnz());
            // Marginal weights match the offline row-count shares.
            let total: u64 = (0..16).map(|i| dense.row_count(i)).sum();
            for i in 0..16 {
                let offline = dense.row_count(i) as f64 / total as f64;
                assert_eq!(snap.gap_weights(gap)[i].to_bits(), offline.to_bits());
            }
        }
    }

    #[test]
    fn decay_weights_recent_windows_higher() {
        // Window A: 0 -> 1 always. Window B: 0 -> 2 always.
        let a = RoutingTrace::new(vec![vec![0, 1]; 4], 3);
        let b = RoutingTrace::new(vec![vec![0, 2]; 4], 3);
        let mut s = StreamingAffinity::new(2, 3, 0.25);
        s.observe(&a);
        s.observe(&b);
        let snap = s.snapshot();
        // Mass: 4 * 0.25 on (0,1), 4 on (0,2) -> P(2|0) = 4/5.
        assert!((snap.prob(0, 0, 2) - 0.8).abs() < 1e-12);
        assert!((snap.prob(0, 0, 1) - 0.2).abs() < 1e-12);
        // decay = 1.0 would give a 50/50 split instead.
        let mut flat = StreamingAffinity::new(2, 3, 1.0);
        flat.observe(&a);
        flat.observe(&b);
        assert!((flat.snapshot().prob(0, 0, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unobserved_rows_estimate_uniform() {
        let t = RoutingTrace::new(vec![vec![0, 1]], 4);
        let mut s = StreamingAffinity::new(2, 4, 0.5);
        s.observe(&t);
        let snap = s.snapshot();
        for p in 0..4 {
            assert!((snap.prob(0, 2, p) - 0.25).abs() < 1e-15);
        }
        // Uniform rows are stored explicitly, like the offline estimators.
        assert_eq!(snap.row(0, 2).0.len(), 4);
    }

    #[test]
    fn layer_popularity_sums_to_one_and_matches_marginals() {
        let t = sampled_trace(8, 4, 900, 5);
        let mut s = StreamingAffinity::new(4, 8, 1.0);
        s.observe(&t);
        let snap = s.snapshot();
        for layer in 0..4 {
            let pop = snap.layer_popularity(layer);
            let sum: f64 = pop.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "layer {layer} sums to {sum}");
            if layer < snap.n_gaps() {
                assert_eq!(pop, snap.gap_weights(layer).to_vec());
            }
        }
        // A gapless snapshot has no routing information: uniform.
        let mut g = StreamingAffinity::new(1, 4, 0.5);
        g.observe(&RoutingTrace::new(vec![vec![0]], 4));
        assert_eq!(g.snapshot().layer_popularity(0), vec![0.25; 4]);
    }

    #[test]
    fn divergence_is_zero_against_own_snapshot() {
        let t = sampled_trace(8, 5, 600, 9);
        let mut s = StreamingAffinity::new(5, 8, 0.5);
        s.observe(&t);
        let snap = s.snapshot();
        assert_eq!(s.divergence(&snap), 0.0);
    }

    #[test]
    fn divergence_grows_with_drift_and_is_bounded() {
        let a = RoutingTrace::new(vec![vec![0, 1], vec![1, 0]], 2);
        let flipped = RoutingTrace::new(vec![vec![0, 0], vec![1, 1]], 2);
        let mut s = StreamingAffinity::new(2, 2, 0.5);
        s.observe(&a);
        let reference = s.snapshot();
        let mut last = 0.0;
        for _ in 0..4 {
            s.observe(&flipped);
            let d = s.divergence(&reference);
            assert!(d > last, "divergence must grow, got {d} after {last}");
            assert!(d <= 1.0 + 1e-12);
            last = d;
        }
        // Fully flipped routing approaches total variation 1.
        assert!(last > 0.8, "fully flipped drift should near 1, got {last}");
    }

    #[test]
    fn divergence_ignores_rows_without_live_traffic() {
        // Reference: expert 0 -> 1. Live: only expert 2 routes (to 3);
        // rows 0/1 keep decayed-away reference mass of zero weight.
        let a = RoutingTrace::new(vec![vec![0, 1]], 4);
        let b = RoutingTrace::new(vec![vec![2, 3]], 4);
        let mut s = StreamingAffinity::new(2, 4, 0.5);
        s.observe(&a);
        let reference = s.snapshot();
        s.observe(&b);
        s.observe(&b);
        // Row 0 drifted only by decay (same conditionals); row 2 moved
        // from uniform to concentrated. Weighted by live mass, row 0's
        // contribution shrinks as its weight decays.
        let d = s.divergence(&reference);
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn gapless_model_never_drifts() {
        let t = RoutingTrace::new(vec![vec![0], vec![1]], 2);
        let mut s = StreamingAffinity::new(1, 2, 0.5);
        s.observe(&t);
        assert_eq!(s.n_gaps(), 0);
        assert_eq!(s.divergence(&s.snapshot()), 0.0);
    }

    #[test]
    fn observation_is_order_deterministic() {
        let w0 = sampled_trace(8, 3, 300, 1);
        let w1 = sampled_trace(8, 3, 300, 2);
        let run = || {
            let mut s = StreamingAffinity::new(3, 8, 0.7);
            s.observe(&w0);
            s.observe(&w1);
            s.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observe_delta_folds_exactly_like_observe() {
        let windows: Vec<RoutingTrace> = (0..5).map(|i| sampled_trace(8, 4, 200, i)).collect();
        let mut plain = StreamingAffinity::new(4, 8, 0.7);
        let mut delta = StreamingAffinity::new(4, 8, 0.7);
        for w in &windows {
            plain.observe(w);
            let _ = delta.observe_delta(w);
            assert_eq!(plain.snapshot(), delta.snapshot());
        }
        assert_eq!(plain.windows_seen(), delta.windows_seen());
    }

    #[test]
    fn delta_lists_exactly_the_rows_that_changed() {
        let mut s = StreamingAffinity::new(3, 8, 0.5);
        s.observe(&sampled_trace(8, 3, 400, 11));
        let before = s.snapshot();
        // A narrow window touching only rows 2 and 5 at each gap.
        let w = RoutingTrace::new(vec![vec![2, 5, 2], vec![5, 2, 5]], 8);
        let d = s.observe_delta(&w);
        let after = s.snapshot();
        assert_eq!(d.window(), 2);
        assert_eq!(d.n_gaps(), 2);
        for gap in 0..2 {
            assert_eq!(d.touched_rows(gap), &[2, 5], "gap {gap}");
            // Fragments are bit-identical to the updated snapshot's rows.
            for (k, &row) in d.touched_rows(gap).iter().enumerate() {
                let (fc, fp) = d.fragment(gap, k);
                let (sc, sp) = after.row(gap, row);
                assert_eq!(fc, sc);
                for (a, b) in fp.iter().zip(sp) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            // Untouched rows are bit-identical to the *previous* snapshot
            // — the property that makes the delta minimal.
            for row in (0..8).filter(|r| !d.touched_rows(gap).contains(r)) {
                let (bc, bp) = before.row(gap, row);
                let (ac, ap) = after.row(gap, row);
                assert_eq!(bc, ac, "gap {gap} row {row}");
                for (a, b) in bp.iter().zip(ap) {
                    assert_eq!(a.to_bits(), b.to_bits(), "gap {gap} row {row}");
                }
            }
            // Weights are replaced wholesale and match the snapshot.
            for (a, b) in d.gap_weights(gap).iter().zip(after.gap_weights(gap)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn decayed_away_rows_flip_to_uniform_in_the_delta() {
        // Row 0 gets mass once, then only row 1 is ever touched. Under
        // decay 0.25 row 0's eager mass underflows to exactly 0.0 after
        // ~540 windows, flipping its snapshot row to uniform without the
        // row being touched — the delta must report that flip.
        let seed_w = RoutingTrace::new(vec![vec![0, 1]], 4);
        let other_w = RoutingTrace::new(vec![vec![1, 2]], 4);
        let mut s = StreamingAffinity::new(2, 4, 0.25);
        s.observe(&seed_w);
        let mut flipped_at = None;
        for step in 0..600 {
            let before = s.snapshot();
            let d = s.observe_delta(&other_w);
            let after = s.snapshot();
            assert_eq!(s.row_mass(0, 0) > 0.0, after.row(0, 0).0.len() == 1);
            if d.touched_rows(0).contains(&0) {
                // The flip window: row 0 appears with an explicit uniform
                // fragment even though no count touched it.
                assert!(before.row(0, 0).0.len() == 1, "flip from the stored row");
                assert_eq!(after.row(0, 0).0.len(), 4);
                let k = d.touched_rows(0).iter().position(|&r| r == 0).unwrap();
                let (fc, fp) = d.fragment(0, k);
                assert_eq!(fc, &[0, 1, 2, 3]);
                assert!(fp.iter().all(|&p| p == 0.25));
                flipped_at = Some(step);
                break;
            }
            // Before the flip, row 0 stays bit-identical window to window.
            assert_eq!(before.row(0, 0).0, after.row(0, 0).0);
        }
        assert!(flipped_at.is_some(), "decay never underflowed row 0");
        // After the flip the row stays uniform and leaves the delta.
        let d = s.observe_delta(&other_w);
        assert!(!d.touched_rows(0).contains(&0));
        assert_eq!(s.snapshot().row(0, 0).0.len(), 4);
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1]")]
    fn zero_decay_rejected() {
        let _ = StreamingAffinity::new(2, 4, 0.0);
    }

    #[test]
    #[should_panic(expected = "window expert mismatch")]
    fn mismatched_window_rejected() {
        let mut s = StreamingAffinity::new(2, 4, 0.5);
        s.observe(&RoutingTrace::new(vec![vec![0, 1]], 8));
    }
}
