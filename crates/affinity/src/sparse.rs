//! Sparse (CSR) affinity estimation — the large-expert counterpart of
//! [`AffinityMatrix`].
//!
//! Top-k routing makes real affinity matrices overwhelmingly sparse: a
//! profiling trace of `T` tokens can observe at most `T` distinct
//! `(expert i, expert p)` transitions per layer gap, while the dense
//! conditional table holds `E x E` cells. At the paper's scales (`E <= 64`)
//! the dense [`AffinityMatrix`] is fine; at `E = 256` or `E = 512` the
//! dense table is mostly zeros and both its memory and every `O(E^2)` pass
//! over it are wasted. [`SparseAffinity`] estimates the same conditionals
//! directly from a trace into CSR form — row-major, ascending columns —
//! without ever materializing the `E x E` table.
//!
//! The estimate is **bit-identical** to the dense estimator: observed rows
//! hold `count / row_total` at their observed successors, unobserved rows
//! estimate uniform (maximum entropy, `1/E` at every column — those rows
//! are stored explicitly so the two estimators define exactly the same
//! matrix). `exflow-placement` builds its sparse objective backend from
//! this type via `Objective::from_sparse_affinities`.

use crate::matrix::AffinityMatrix;
use crate::trace::RoutingTrace;

/// CSR estimate of the conditional probability `P(expert p at to_layer |
/// expert i at from_layer)` — the sparse twin of [`AffinityMatrix`].
///
/// ```
/// use exflow_affinity::{AffinityMatrix, RoutingTrace, SparseAffinity};
///
/// let trace = RoutingTrace::new(vec![vec![0, 1], vec![0, 1], vec![2, 0]], 3);
/// let sparse = SparseAffinity::from_trace(&trace, 0, 1);
/// let dense = AffinityMatrix::from_trace(&trace, 0, 1);
/// // Same estimate, bit for bit — but only the support is stored
/// // (expert 1's unobserved row keeps its explicit uniform fill).
/// assert_eq!(sparse.prob(0, 1), dense.prob(0, 1));
/// assert_eq!(sparse.prob(0, 1), 1.0); // both tokens from 0 went to 1
/// assert_eq!(sparse.nnz(), 5);        // vs 9 dense cells
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseAffinity {
    n_experts: usize,
    from_layer: usize,
    to_layer: usize,
    /// CSR row boundaries (`len == n_experts + 1`).
    row_ptr: Vec<usize>,
    /// Column (successor expert) of each stored entry, ascending per row.
    cols: Vec<usize>,
    /// Conditional probability of each stored entry.
    probs: Vec<f64>,
    /// Joint observation count of each stored entry (0 for the uniform
    /// fill of unobserved rows).
    counts: Vec<u64>,
    /// Observations whose source expert was `i` (empirical marginal
    /// numerators at the earlier layer).
    row_counts: Vec<u64>,
}

impl SparseAffinity {
    /// Estimate the affinity between `from_layer` and `to_layer` from a
    /// trace (`to_layer > from_layer`), in CSR form. Defines exactly the
    /// same matrix as [`AffinityMatrix::from_trace`] on the same trace.
    pub fn from_trace(trace: &RoutingTrace, from_layer: usize, to_layer: usize) -> Self {
        assert!(
            from_layer < to_layer && to_layer < trace.n_layers(),
            "need from_layer < to_layer < n_layers"
        );
        let e = trace.n_experts();
        let pairs = trace.pair_counts(from_layer, to_layer);
        let mut row_counts = vec![0u64; e];
        for &((i, _), c) in &pairs {
            row_counts[i as usize] += c;
        }

        let mut row_ptr = Vec::with_capacity(e + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::with_capacity(pairs.len());
        let mut probs = Vec::with_capacity(pairs.len());
        let mut counts = Vec::with_capacity(pairs.len());
        let mut idx = 0usize;
        for (i, &row_total) in row_counts.iter().enumerate() {
            if row_total == 0 {
                // Unobserved source expert: maximum-entropy estimate,
                // stored explicitly to match the dense estimator cell for
                // cell.
                for p in 0..e {
                    cols.push(p);
                    probs.push(1.0 / e as f64);
                    counts.push(0);
                }
            } else {
                while idx < pairs.len() && pairs[idx].0 .0 as usize == i {
                    let ((_, p), c) = pairs[idx];
                    cols.push(p as usize);
                    probs.push(c as f64 / row_total as f64);
                    counts.push(c);
                    idx += 1;
                }
            }
            row_ptr.push(cols.len());
        }

        SparseAffinity {
            n_experts: e,
            from_layer,
            to_layer,
            row_ptr,
            cols,
            probs,
            counts,
            row_counts,
        }
    }

    /// Estimate affinity for every consecutive layer pair of a trace.
    pub fn consecutive(trace: &RoutingTrace) -> Vec<SparseAffinity> {
        (0..trace.n_layers().saturating_sub(1))
            .map(|j| SparseAffinity::from_trace(trace, j, j + 1))
            .collect()
    }

    /// Build directly from exact CSR probabilities — e.g. a routing
    /// model's `transition_sparse` emission — the sparse analog of
    /// [`AffinityMatrix::from_probs`]. Rows must sum to 1 with ascending
    /// columns. Counts are zero (there are no observations), so an
    /// objective built from this weights source experts uniformly, just
    /// like the dense oracle path.
    pub fn from_exact(
        row_ptr: Vec<usize>,
        cols: Vec<usize>,
        probs: Vec<f64>,
        n_experts: usize,
        from_layer: usize,
        to_layer: usize,
    ) -> Self {
        assert!(from_layer < to_layer, "need from_layer < to_layer");
        assert_eq!(
            row_ptr.len(),
            n_experts + 1,
            "row_ptr must have E + 1 bounds"
        );
        assert_eq!(cols.len(), probs.len());
        for i in 0..n_experts {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            let s: f64 = probs[lo..hi].iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} must sum to 1, got {s}");
            assert!(
                cols[lo..hi].windows(2).all(|w| w[0] < w[1]),
                "row {i} columns must be strictly ascending"
            );
            assert!(cols[lo..hi].iter().all(|&p| p < n_experts));
        }
        let n_cells = cols.len();
        SparseAffinity {
            n_experts,
            from_layer,
            to_layer,
            row_ptr,
            cols,
            probs,
            counts: vec![0; n_cells],
            row_counts: vec![0; n_experts],
        }
    }

    /// Compress a dense [`AffinityMatrix`] by dropping its zero cells.
    /// Round-trips with [`SparseAffinity::to_dense_probs`].
    pub fn from_matrix(m: &AffinityMatrix) -> Self {
        let e = m.n_experts();
        let mut row_ptr = Vec::with_capacity(e + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::new();
        let mut probs = Vec::new();
        let mut counts = Vec::new();
        let mut row_counts = Vec::with_capacity(e);
        for i in 0..e {
            for (p, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    cols.push(p);
                    probs.push(v);
                    counts.push(m.count(i, p));
                }
            }
            row_ptr.push(cols.len());
            row_counts.push(m.row_count(i));
        }
        SparseAffinity {
            n_experts: e,
            from_layer: m.from_layer(),
            to_layer: m.to_layer(),
            row_ptr,
            cols,
            probs,
            counts,
            row_counts,
        }
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// The earlier layer.
    pub fn from_layer(&self) -> usize {
        self.from_layer
    }

    /// The later layer.
    pub fn to_layer(&self) -> usize {
        self.to_layer
    }

    /// Number of stored (structurally nonzero) cells.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// `nnz / E^2` — the fraction of the dense table actually stored.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.n_experts * self.n_experts) as f64
    }

    /// Stored entries of one conditional row: `(columns, probabilities)`,
    /// columns ascending.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.cols[lo..hi], &self.probs[lo..hi])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// `P(to = p | from = i)` (0 for cells not stored).
    pub fn prob(&self, i: usize, p: usize) -> f64 {
        let (cols, probs) = self.row(i);
        match cols.binary_search(&p) {
            Ok(k) => probs[k],
            Err(_) => 0.0,
        }
    }

    /// Observations whose source expert was `i`.
    pub fn row_count(&self, i: usize) -> u64 {
        self.row_counts[i]
    }

    /// Total observations folded into this estimate.
    pub fn total_count(&self) -> u64 {
        self.row_counts.iter().sum()
    }

    /// The raw CSR triplet `(row_ptr, cols, probs)` — consumed by the
    /// placement objective's sparse backend.
    pub fn csr(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_ptr, &self.cols, &self.probs)
    }

    /// Expand to the flattened row-major `E x E` probability table (test
    /// and diagnostics helper; defeats the point at large `E`).
    pub fn to_dense_probs(&self) -> Vec<f64> {
        let e = self.n_experts;
        let mut flat = vec![0.0f64; e * e];
        for i in 0..e {
            let (cols, probs) = self.row(i);
            for (&p, &v) in cols.iter().zip(probs) {
                flat[i * e + p] = v;
            }
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn trace() -> RoutingTrace {
        RoutingTrace::new(
            vec![vec![0, 1, 2], vec![0, 1, 0], vec![1, 2, 2], vec![1, 2, 1]],
            3,
        )
    }

    fn big_trace(e: usize, n: usize) -> RoutingTrace {
        let model = AffinityModelSpec::new(4, e).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), n, 1, 77);
        RoutingTrace::from_batch(&batch, e)
    }

    #[test]
    fn matches_dense_estimator_cell_for_cell() {
        let t = big_trace(16, 2000);
        for gap in 0..3 {
            let dense = AffinityMatrix::from_trace(&t, gap, gap + 1);
            let sparse = SparseAffinity::from_trace(&t, gap, gap + 1);
            for i in 0..16 {
                for p in 0..16 {
                    assert_eq!(
                        sparse.prob(i, p).to_bits(),
                        dense.prob(i, p).to_bits(),
                        "gap {gap} cell ({i},{p})"
                    );
                }
                assert_eq!(sparse.row_count(i), dense.row_count(i));
            }
        }
    }

    #[test]
    fn from_matrix_equals_from_trace() {
        let t = big_trace(8, 500);
        let via_dense = SparseAffinity::from_matrix(&AffinityMatrix::from_trace(&t, 0, 1));
        let direct = SparseAffinity::from_trace(&t, 0, 1);
        assert_eq!(via_dense, direct);
    }

    #[test]
    fn from_exact_wraps_model_emission() {
        // κ = 1 routing: the model's exact transitions are natively
        // sparse; wrapping the CSR emission must reproduce every cell.
        let m = AffinityModelSpec::new(3, 32).with_affinity(1.0).build();
        let (row_ptr, cols, vals) = m.transition_sparse(1, 0);
        let s = SparseAffinity::from_exact(row_ptr, cols, vals, 32, 0, 1);
        let flat = m.transition(1, 0);
        assert!(s.density() < 0.25, "κ=1 emission must be sparse");
        for i in 0..32 {
            for p in 0..32 {
                assert_eq!(s.prob(i, p).to_bits(), flat[i * 32 + p].to_bits());
            }
        }
        // No observations: objectives built from it weight uniformly.
        assert_eq!(s.total_count(), 0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn from_exact_rejects_non_stochastic_rows() {
        let _ = SparseAffinity::from_exact(vec![0, 1, 2], vec![0, 1], vec![0.5, 0.9], 2, 0, 1);
    }

    #[test]
    fn unobserved_rows_store_uniform() {
        let s = SparseAffinity::from_trace(&trace(), 0, 1);
        // Expert 2 never appears at layer 0: uniform row, all 3 cells.
        assert_eq!(s.row_nnz(2), 3);
        assert!((s.prob(2, 0) - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(s.row_count(2), 0);
    }

    #[test]
    fn observed_rows_store_only_support() {
        let s = SparseAffinity::from_trace(&trace(), 0, 1);
        // From expert 0 both tokens go to expert 1: one stored cell.
        assert_eq!(s.row_nnz(0), 1);
        assert_eq!(s.prob(0, 1), 1.0);
        assert_eq!(s.prob(0, 0), 0.0);
    }

    #[test]
    fn density_shrinks_with_scale() {
        // Same token budget, more experts: the stored fraction collapses.
        let small = SparseAffinity::from_trace(&big_trace(8, 1500), 0, 1);
        let large = SparseAffinity::from_trace(&big_trace(64, 1500), 0, 1);
        assert!(large.density() < small.density());
        assert!(large.nnz() <= 1500 + 64 * 64);
    }

    #[test]
    fn rows_sum_to_one() {
        let t = big_trace(32, 800);
        for s in SparseAffinity::consecutive(&t) {
            for i in 0..32 {
                let (_, probs) = s.row(i);
                let total: f64 = probs.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "row {i} sums to {total}");
            }
        }
    }

    #[test]
    fn dense_round_trip() {
        let t = big_trace(8, 300);
        let m = AffinityMatrix::from_trace(&t, 1, 2);
        let s = SparseAffinity::from_matrix(&m);
        let flat = s.to_dense_probs();
        for i in 0..8 {
            for p in 0..8 {
                assert_eq!(flat[i * 8 + p].to_bits(), m.prob(i, p).to_bits());
            }
        }
    }

    #[test]
    fn consecutive_covers_all_gaps() {
        let ms = SparseAffinity::consecutive(&trace());
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].from_layer(), 0);
        assert_eq!(ms[1].to_layer(), 2);
    }

    #[test]
    #[should_panic(expected = "from_layer < to_layer")]
    fn backwards_layers_rejected() {
        let _ = SparseAffinity::from_trace(&trace(), 1, 1);
    }
}
