//! Summary metrics over affinity matrices.

use crate::matrix::AffinityMatrix;

/// Mean over source experts of the single strongest conditional
/// probability — how deterministic the next hop is.
pub fn mean_top1_mass(m: &AffinityMatrix) -> f64 {
    let e = m.n_experts();
    (0..e).map(|i| m.most_affine(i).1).sum::<f64>() / e as f64
}

/// Mean over source experts of the top-`k` conditional mass — the fraction
/// of tokens that stay within the `k` most affiliated successors. With `k`
/// equal to the per-GPU expert capacity, this upper-bounds the fraction of
/// tokens a perfect placement can keep GPU-local.
pub fn mean_topk_mass(m: &AffinityMatrix, k: usize) -> f64 {
    let e = m.n_experts();
    (0..e).map(|i| m.topk_mass(i, k)).sum::<f64>() / e as f64
}

/// Affinity score normalized against a structureless (uniform) matrix:
/// `0` means routing between the two layers is independent, `1` means the
/// top-`k` successors capture everything.
pub fn affinity_score(m: &AffinityMatrix, k: usize) -> f64 {
    let e = m.n_experts();
    if e <= k {
        return 1.0;
    }
    let uniform = k as f64 / e as f64;
    let measured = mean_topk_mass(m, k);
    ((measured - uniform) / (1.0 - uniform)).clamp(0.0, 1.0)
}

/// Shannon entropy (nats) of one source expert's conditional row.
pub fn row_entropy(m: &AffinityMatrix, i: usize) -> f64 {
    m.row(i)
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Mean row entropy, normalized by `ln(E)` into `[0, 1]`
/// (`1` = independent routing, `0` = deterministic next hop).
pub fn normalized_entropy(m: &AffinityMatrix) -> f64 {
    let e = m.n_experts();
    if e == 1 {
        return 0.0;
    }
    let mean: f64 = (0..e).map(|i| row_entropy(m, i)).sum::<f64>() / e as f64;
    mean / (e as f64).ln()
}

/// How much of corpus-B's conditional mass is captured by the top-`k`
/// successor sets chosen from corpus-A's matrix, relative to B's own
/// optimal top-`k` sets (Table III's row-normalized transfer score —
/// `1.0` means the affinity structure transfers perfectly).
pub fn transfer_score(a: &AffinityMatrix, b: &AffinityMatrix, k: usize) -> f64 {
    assert_eq!(a.n_experts(), b.n_experts(), "matrices must match in size");
    let e = a.n_experts();
    let mut captured = 0.0f64;
    let mut optimal = 0.0f64;
    for i in 0..e {
        // Top-k successor set according to A.
        let mut idx: Vec<usize> = (0..e).collect();
        idx.sort_by(|&x, &y| a.prob(i, y).partial_cmp(&a.prob(i, x)).unwrap());
        captured += idx.iter().take(k).map(|&p| b.prob(i, p)).sum::<f64>();
        optimal += b.topk_mass(i, k);
    }
    if optimal == 0.0 {
        1.0
    } else {
        captured / optimal
    }
}

/// Mean absolute difference between two conditional matrices (estimation
/// error for the sampling study, Fig. 13).
pub fn mean_abs_diff(a: &AffinityMatrix, b: &AffinityMatrix) -> f64 {
    assert_eq!(a.n_experts(), b.n_experts());
    let e = a.n_experts();
    let mut acc = 0.0f64;
    for i in 0..e {
        for p in 0..e {
            acc += (a.prob(i, p) - b.prob(i, p)).abs();
        }
    }
    acc / (e * e) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(e: usize) -> AffinityMatrix {
        AffinityMatrix::from_probs(vec![1.0 / e as f64; e * e], e, 0, 1)
    }

    fn identity(e: usize) -> AffinityMatrix {
        let mut p = vec![0.0f64; e * e];
        for i in 0..e {
            p[i * e + i] = 1.0;
        }
        AffinityMatrix::from_probs(p, e, 0, 1)
    }

    #[test]
    fn top1_mass_bounds() {
        assert!((mean_top1_mass(&uniform(8)) - 0.125).abs() < 1e-12);
        assert!((mean_top1_mass(&identity(8)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affinity_score_zero_for_uniform_one_for_identity() {
        assert!(affinity_score(&uniform(8), 2) < 1e-9);
        assert!((affinity_score(&identity(8), 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affinity_score_saturates_when_k_covers_all() {
        assert_eq!(affinity_score(&uniform(4), 4), 1.0);
    }

    #[test]
    fn entropy_extremes() {
        assert!((normalized_entropy(&uniform(16)) - 1.0).abs() < 1e-9);
        assert!(normalized_entropy(&identity(16)) < 1e-9);
    }

    #[test]
    fn transfer_score_is_one_for_same_matrix() {
        let m = identity(6);
        assert!((transfer_score(&m, &m, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_score_penalizes_mismatched_structure() {
        // A prefers the diagonal; B prefers a shifted diagonal.
        let e = 6;
        let a = identity(e);
        let mut p = vec![0.0f64; e * e];
        for i in 0..e {
            p[i * e + (i + 1) % e] = 1.0;
        }
        let b = AffinityMatrix::from_probs(p, e, 0, 1);
        assert!(transfer_score(&a, &b, 1) < 0.01);
    }

    #[test]
    fn transfer_is_high_within_uniform() {
        // Against a structureless B, any choice captures the same mass.
        let a = identity(8);
        let b = uniform(8);
        assert!((transfer_score(&a, &b, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_abs_diff_zero_iff_equal() {
        let m = identity(5);
        assert_eq!(mean_abs_diff(&m, &m), 0.0);
        assert!(mean_abs_diff(&m, &uniform(5)) > 0.0);
    }

    #[test]
    fn mean_abs_diff_symmetric() {
        let a = identity(5);
        let b = uniform(5);
        assert!((mean_abs_diff(&a, &b) - mean_abs_diff(&b, &a)).abs() < 1e-15);
    }
}
