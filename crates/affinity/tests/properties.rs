//! Property-based tests for affinity estimation.

use exflow_affinity::{metrics, AffinityMatrix, RoutingTrace};
use exflow_model::routing::AffinityModelSpec;
use exflow_model::{CorpusSpec, TokenBatch};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = RoutingTrace> {
    (2usize..16, 2usize..8, 1u64..500, 10usize..200).prop_map(|(e, l, seed, n)| {
        let model = AffinityModelSpec::new(l, e).with_seed(seed).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), n, 1, seed);
        RoutingTrace::from_batch(&batch, e)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimated_rows_are_distributions(trace in arb_trace()) {
        for m in AffinityMatrix::consecutive(&trace) {
            for i in 0..m.n_experts() {
                let s: f64 = m.row(i).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-9);
                prop_assert!(m.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn histograms_partition_tokens(trace in arb_trace()) {
        for layer in 0..trace.n_layers() {
            let h = trace.layer_histogram(layer);
            prop_assert_eq!(h.iter().sum::<u64>(), trace.n_tokens() as u64);
        }
    }

    #[test]
    fn topk_mass_monotone_in_k(trace in arb_trace()) {
        let m = AffinityMatrix::from_trace(&trace, 0, 1);
        for i in 0..m.n_experts() {
            let mut prev = 0.0;
            for k in 1..=m.n_experts() {
                let cur = m.topk_mass(i, k);
                prop_assert!(cur + 1e-12 >= prev);
                prev = cur;
            }
            prop_assert!((prev - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn affinity_score_in_unit_interval(trace in arb_trace(), k in 1usize..4) {
        let m = AffinityMatrix::from_trace(&trace, 0, 1);
        let s = metrics::affinity_score(&m, k);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn normalized_entropy_in_unit_interval(trace in arb_trace()) {
        let m = AffinityMatrix::from_trace(&trace, 0, 1);
        let h = metrics::normalized_entropy(&m);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&h));
    }

    #[test]
    fn self_transfer_is_perfect(trace in arb_trace(), k in 1usize..4) {
        let m = AffinityMatrix::from_trace(&trace, 0, 1);
        prop_assert!((metrics::transfer_score(&m, &m, k) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stronger_affinity_scores_higher(seed in 0u64..200) {
        let make = |kappa: f64| {
            let model = AffinityModelSpec::new(2, 16)
                .with_affinity(kappa)
                .with_seed(seed)
                .build();
            let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 4000, 1, seed);
            let trace = RoutingTrace::from_batch(&batch, 16);
            AffinityMatrix::from_trace(&trace, 0, 1)
        };
        let weak = metrics::affinity_score(&make(0.2), 4);
        let strong = metrics::affinity_score(&make(0.9), 4);
        prop_assert!(strong > weak, "strong {} <= weak {}", strong, weak);
    }
}
