//! Cluster sweep: how ExFlow's advantage over the baseline scales with the
//! number of nodes — the deployment question an operator would ask before
//! adopting affinity placement.
//!
//! ```text
//! cargo run --release --example cluster_sweep
//! ```

use exflow::core::{InferenceEngine, ParallelismMode, Scenario};
use exflow::model::presets::moe_gpt_m;
use exflow::topology::ClusterSpec;

fn main() {
    let mut model = moe_gpt_m(32);
    model.n_layers = 12; // keep the sweep quick

    println!("{} across cluster sizes (4 GPUs per node)\n", model.name);
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>10} {:>12}",
        "nodes", "gpus", "deepspeed t/s", "exflow t/s", "speedup", "a2a-share"
    );

    for nodes in [1usize, 2, 4, 8] {
        let cluster = ClusterSpec::wilkes3(nodes).expect("valid cluster");
        let engine = InferenceEngine::builder(model.clone(), cluster)
            .requests_per_gpu(8)
            .prompt_len(16)
            .n_iterations(2)
            .profile_tokens(2000)
            .placement_restarts(0)
            .build();

        let ds = engine
            .run_scenario(&Scenario::offline(ParallelismMode::Vanilla))
            .expect_offline();
        let ex = engine
            .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity))
            .expect_offline();
        println!(
            "{:>6} {:>6} {:>14.0} {:>14.0} {:>9.2}x {:>11.1}%",
            nodes,
            cluster.world_size(),
            ds.throughput(),
            ex.throughput(),
            ex.throughput() / ds.throughput(),
            ds.breakdown.alltoall_fraction() * 100.0
        );
    }

    println!(
        "\nThe speedup grows with node count because vanilla expert \
         parallelism becomes Alltoall-bound (paper Fig. 9) while ExFlow \
         keeps most dispatches on-GPU or on-node."
    );
}
