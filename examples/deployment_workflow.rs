//! Deployment workflow: the full offline artifact pipeline an operator
//! would run — profile, solve, serialize, and sanity-check against the
//! memory-hungry replication alternative.
//!
//! ```text
//! cargo run --release --example deployment_workflow
//! ```

use exflow::affinity::io::{parse_trace_csv, write_trace_csv};
use exflow::affinity::{AffinityMatrix, RoutingTrace};
use exflow::model::capacity::{apply_capacity, CapacityPolicy};
use exflow::model::presets::moe_gpt_m;
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::io::{parse_placement, write_placement};
use exflow::placement::replication::ReplicationPlan;
use exflow::placement::staged::solve_staged;
use exflow::placement::{Objective, Placement};
use exflow::topology::ClusterSpec;

fn main() {
    let model = moe_gpt_m(16);
    let cluster = ClusterSpec::new(2, 4).expect("valid cluster");

    // --- 1. Profile: trace tokens and persist the trace. -----------------
    let spec = AffinityModelSpec::new(model.n_layers, model.n_experts);
    let routing = spec.build();
    let corpus = CorpusSpec::pile_proxy(spec.n_domains);
    let batch = TokenBatch::sample(&routing, &corpus, 3000, 1, 2024);
    let trace = RoutingTrace::from_batch(&batch, model.n_experts);
    let trace_csv = write_trace_csv(&trace);
    println!(
        "profiled {} tokens x {} layers ({} bytes as CSV)",
        trace.n_tokens(),
        trace.n_layers(),
        trace_csv.len()
    );

    // Round-trip proves the artifact is loadable where the model deploys.
    let reloaded = parse_trace_csv(&trace_csv).expect("trace artifact parses");
    assert_eq!(reloaded, trace);

    // --- 2. Check the routing is capacity-safe. --------------------------
    let experts_l0: Vec<u16> = (0..trace.n_tokens())
        .map(|t| trace.expert_at(t, 0) as u16)
        .collect();
    let outcome = apply_capacity(
        &experts_l0,
        model.n_experts,
        CapacityPolicy::Fixed { factor: 1.25 },
    );
    println!(
        "capacity check: {:.2}% of tokens would overflow a CF=1.25 deployment",
        outcome.drop_rate() * 100.0
    );

    // --- 3. Solve and serialize the placement. ---------------------------
    let objective = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
    let staged = solve_staged(&objective, &cluster, 2, 2024);
    let placement_text = write_placement(&staged.gpu_level);
    let reparsed = parse_placement(&placement_text).expect("placement artifact parses");
    assert_eq!(reparsed, staged.gpu_level);
    println!(
        "placement artifact: {} lines, expected locality {:.1}%",
        placement_text.lines().count(),
        objective.local_fraction(&staged.gpu_level) * 100.0
    );

    // --- 4. Compare against the replication alternative. -----------------
    let base = Placement::round_robin(model.n_layers, model.n_experts, cluster.world_size());
    println!("\nzero-memory ExFlow placement vs Lina-style replication:");
    println!(
        "  exflow      : extra-copies/GPU = 0   locality = {:.1}%",
        exflow::placement::objective::measure_trace_locality(&trace, &staged.gpu_level).fraction()
            * 100.0
    );
    for budget in [1usize, 2, 4] {
        let plan = ReplicationPlan::most_popular(&objective, base.clone(), budget);
        println!(
            "  replicate-{budget} : extra-copies/GPU = {:<3} locality = {:.1}%",
            plan.extra_copies_per_gpu(),
            plan.trace_local_fraction(&trace) * 100.0
        );
    }
    println!(
        "\n(each extra copy costs {} MB of expert weights per GPU)",
        model.expert_params() * 2 / 1_000_000
    );
}
