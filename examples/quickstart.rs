//! Quickstart: run the same MoE inference workload under the three
//! execution strategies and compare them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exflow::core::{InferenceEngine, ParallelismMode, Scenario};
use exflow::model::presets::moe_gpt_m;
use exflow::topology::ClusterSpec;

fn main() {
    // A GPT-350M MoE model with 16 experts per layer, served with expert
    // parallelism on 2 nodes x 4 GPUs (the paper's headline scenario).
    let model = moe_gpt_m(16);
    let cluster = ClusterSpec::new(2, 4).expect("valid cluster");

    println!("model   : {}", model.name);
    println!(
        "cluster : {} nodes x {} GPUs ({} experts/GPU/layer)\n",
        cluster.n_nodes(),
        cluster.gpus_per_node(),
        model.n_experts / cluster.world_size()
    );

    // Building the engine profiles routing offline and solves the staged
    // affinity placement — the whole of ExFlow's deploy-time cost.
    let engine = InferenceEngine::builder(model, cluster)
        .requests_per_gpu(8)
        .prompt_len(32)
        .n_iterations(3)
        .profile_tokens(2000)
        .build();

    let mut baseline_throughput = None;
    for mode in ParallelismMode::ALL {
        let report = engine
            .run_scenario(&Scenario::offline(mode))
            .expect_offline();
        let baseline = *baseline_throughput.get_or_insert(report.throughput());
        println!("{:<22}", mode.label());
        println!(
            "  throughput      : {:>9.0} tokens/s  ({:.2}x)",
            report.throughput(),
            report.throughput() / baseline
        );
        println!(
            "  alltoall time   : {:>9.1} us/rank",
            report.breakdown.alltoall * 1e6
        );
        println!(
            "  allgather time  : {:>9.1} us/rank",
            report.breakdown.allgather * 1e6
        );
        println!(
            "  dispatch local  : {:>8.1}% GPU, {:.1}% node",
            report.dispatch.gpu_local_fraction() * 100.0,
            report.dispatch.node_local_fraction() * 100.0
        );
        println!(
            "  cross-GPU bytes : {:>9} KiB alltoall",
            report.alltoall_bytes.cross_gpu() / 1024
        );
        println!();
    }
}
