//! Placement planner: given a model and a cluster, profile affinity, run
//! the staged ILP heuristics, and print the expert-to-GPU map a serving
//! stack would load — ExFlow's deploy-time artifact.
//!
//! ```text
//! cargo run --release --example placement_planner
//! ```

use exflow::affinity::{AffinityMatrix, RoutingTrace};
use exflow::model::presets::moe_gpt_m;
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::objective::measure_trace_locality;
use exflow::placement::staged::solve_staged;
use exflow::placement::{Objective, Placement};
use exflow::topology::ClusterSpec;

fn main() {
    let model = moe_gpt_m(32);
    let cluster = ClusterSpec::new(2, 4).expect("valid cluster");
    println!(
        "planning {} on {} nodes x {} GPUs\n",
        model.name,
        cluster.n_nodes(),
        cluster.gpus_per_node()
    );

    // 1. Profile: trace a few thousand tokens offline.
    let spec = AffinityModelSpec::new(model.n_layers, model.n_experts);
    let routing = spec.build();
    let batch = TokenBatch::sample(
        &routing,
        &CorpusSpec::pile_proxy(spec.n_domains),
        3000,
        1,
        7,
    );
    let trace = RoutingTrace::from_batch(&batch, model.n_experts);
    let objective = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));

    // 2. Solve: stage 1 (nodes) then stage 2 (GPUs within nodes).
    let staged = solve_staged(&objective, &cluster, 2, 7);
    assert!(staged.is_consistent(&cluster));

    // 3. Compare against the DeepSpeed-style contiguous placement.
    let rr = Placement::round_robin(model.n_layers, model.n_experts, cluster.world_size());
    let rr_local = measure_trace_locality(&trace, &rr).fraction();
    let opt_local = measure_trace_locality(&trace, &staged.gpu_level).fraction();
    println!("expected GPU-local transitions:");
    println!("  round-robin placement : {:.1}%", rr_local * 100.0);
    println!("  staged affinity       : {:.1}%\n", opt_local * 100.0);

    // 4. Print the loadable map for the first layers.
    println!("expert -> GPU map (first 4 layers):");
    for layer in 0..4 {
        print!("  layer {layer:>2}: ");
        for gpu in 0..cluster.world_size() {
            let experts = staged.gpu_level.experts_on(layer, gpu);
            let list: Vec<String> = experts.iter().map(|e| e.to_string()).collect();
            print!("gpu{gpu}[{}] ", list.join(","));
        }
        println!();
    }

    println!("\nstage-1 node map (layer 0):");
    for node in 0..cluster.n_nodes() {
        let experts = staged.node_level.experts_on(0, node);
        println!("  node {node}: {experts:?}");
    }
}
