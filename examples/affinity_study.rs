//! Affinity study: profile a pre-trained (simulated) MoE model and
//! visualize its inter-layer expert affinity — the measurement that makes
//! ExFlow's placement possible (paper Fig. 2).
//!
//! ```text
//! cargo run --release --example affinity_study
//! ```

use exflow::affinity::{metrics, AffinityMatrix, RoutingTrace};
use exflow::model::presets::heatmap_model;
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};

fn main() {
    let model = heatmap_model();
    println!(
        "profiling {} ({} layers x {} experts)\n",
        model.name, model.n_layers, model.n_experts
    );

    // Stand-in for "trace tokens from the Pile through the checkpoint".
    let spec = AffinityModelSpec::new(model.n_layers, model.n_experts);
    let routing = spec.build();
    let corpus = CorpusSpec::pile_proxy(spec.n_domains);
    let batch = TokenBatch::sample(&routing, &corpus, 8000, 1, 42);
    let trace = RoutingTrace::from_batch(&batch, model.n_experts);

    // Consecutive-layer conditional probabilities.
    println!("layer-pair affinity (top-1 conditional mass, normalized score, entropy):");
    for m in AffinityMatrix::consecutive(&trace) {
        println!(
            "  L{:<2} -> L{:<2}   top1 {:.3}   score(k=3) {:.3}   entropy {:.3}",
            m.from_layer(),
            m.to_layer(),
            metrics::mean_top1_mass(&m),
            metrics::affinity_score(&m, 3),
            metrics::normalized_entropy(&m),
        );
    }

    // One heatmap, rendered the way the paper's Fig. 2 shades cells.
    let m = AffinityMatrix::from_trace(&trace, 0, 1);
    println!("\nheatmap: layer 0 -> layer 1 (' '<'.'<':'<'+'<'#'<'@'):");
    println!("{}", m.ascii_heatmap());

    // The most affiliated successor of each expert (the paper's A*).
    println!("most affiliated successors at layer 0:");
    for i in 0..model.n_experts.min(8) {
        let (succ, p) = m.most_affine(i);
        println!("  expert {i:>2} -> expert {succ:>2}  (P = {p:.3})");
    }

    // Sample efficiency: how fast the estimate stabilizes (Fig. 13's
    // statistical underpinning).
    println!("\nestimation stability vs sample size:");
    for pt in
        exflow::affinity::sampling::stability_curve(&trace, &[50, 500, 1000, 2000, 4000, 8000], 4)
    {
        println!(
            "  {:>5} tokens   est. error {:.4}   transfer {:.3}",
            pt.n_tokens, pt.estimation_error, pt.transfer
        );
    }
}
